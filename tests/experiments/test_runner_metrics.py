"""Observability aggregation across serial and pooled figure runs.

The headline regression under test: ``run_figure(workers=N)`` used to
drop every worker's statistics. Now each repetition records into its own
fragment and the parent merges them in deterministic task order, so the
merged counter totals are *equal* for any worker count.
"""

import pytest

from repro.experiments.runner import run_figure
from repro.obs import MetricsRegistry, Tracer, observed
from tests.experiments.test_runner import TINY, tiny_spec

#: Deterministic counters that must agree between worker counts. Wall
#: clock data lives in histograms and is excluded on purpose.
_KEY_COUNTERS = (
    "builder.transfers",
    "builder.candidates_scanned",
    "nearest_index.scalar_queries",
    "nearest_index.cache_misses",
    "executor.transfers_started",
)


def _counters(workers):
    metrics = MetricsRegistry()
    run_figure(tiny_spec(), TINY, metrics=metrics, workers=workers)
    return metrics.counter_values()


class TestWorkerMetricsAggregation:
    def test_serial_counters_nonzero(self):
        counters = _counters(workers=None)
        for name in _KEY_COUNTERS:
            assert counters.get(name, 0) > 0, name

    def test_worker_counts_agree(self):
        serial = _counters(workers=None)
        pooled = _counters(workers=2)
        assert serial == pooled

    def test_result_carries_metrics_snapshot(self):
        metrics = MetricsRegistry()
        result = run_figure(tiny_spec(), TINY, metrics=metrics, workers=2)
        assert result.metrics is not None
        assert result.metrics["format"] == "rtsp-metrics/1"
        assert result.metrics["counters"] == metrics.counter_values()
        assert (
            result.metrics["histograms"]["executor.queue_depth"]["count"] > 0
        )

    def test_no_obs_leaves_metrics_none(self):
        result = run_figure(tiny_spec(), TINY)
        assert result.metrics is None

    def test_observed_values_match_unobserved(self):
        plain = run_figure(tiny_spec(), TINY)
        observed_run = run_figure(
            tiny_spec(), TINY, metrics=MetricsRegistry(), tracer=Tracer()
        )
        for a, b in zip(plain.cells, observed_run.cells):
            assert (a.x, a.pipeline, a.values) == (b.x, b.pipeline, b.values)

    def test_defaults_from_context(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        with observed(tracer=tracer, metrics=metrics):
            result = run_figure(tiny_spec(), TINY)
        assert result.metrics is not None
        assert metrics.counter_values()["builder.transfers"] > 0
        assert any(s.name == "repetition" for s in tracer.spans)


class TestTraceAggregation:
    def test_trace_spans_cover_grid(self):
        tracer = Tracer()
        run_figure(tiny_spec(), TINY, tracer=tracer)
        reps = [s for s in tracer.spans if s.name == "repetition"]
        cells = [s for s in tracer.spans if s.name == "cell"]
        sims = [s for s in tracer.spans if s.name == "simulate"]
        assert len(reps) == 2 * 2  # x values x repetitions
        assert len(cells) == len(sims) == 2 * 2 * 2  # ... x pipelines
        assert all("makespan" in s.attrs for s in sims)

    def test_logical_stream_identical_across_worker_counts(self):
        streams = []
        for workers in (None, 2):
            tracer = Tracer()
            run_figure(tiny_spec(), TINY, tracer=tracer, workers=workers)
            streams.append(tracer.logical_lines())
        assert streams[0] == streams[1]

    @pytest.mark.parametrize("workers", [None, 2])
    def test_span_ids_unique_after_merge(self, workers):
        tracer = Tracer()
        run_figure(tiny_spec(), TINY, tracer=tracer, workers=workers)
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids)
