"""Tests for the multi-epoch scenario runner."""

import pytest

from repro.experiments.scenario import ScenarioResult, run_scenario
from repro.workloads.video import VideoRotationModel


@pytest.fixture(scope="module")
def result():
    model = VideoRotationModel(
        num_servers=8, num_movies=30, capacity_movies=6, rng=7
    )
    return run_scenario(model.days(3), ["RDF", "GOLCF+H1+H2"], base_seed=1)


class TestRunScenario:
    def test_cell_coverage(self, result):
        assert len(result.epochs) == 3 * 2
        assert {e.pipeline for e in result.epochs} == {"RDF", "GOLCF+H1+H2"}
        assert {e.epoch for e in result.epochs} == {0, 1, 2}

    def test_series_in_epoch_order(self, result):
        series = result.series("RDF")
        assert len(series) == 3
        assert all(v >= 0 for v in series)

    def test_total_is_series_sum(self, result):
        assert result.total("RDF") == pytest.approx(sum(result.series("RDF")))

    def test_winner_saves_over_baseline(self, result):
        saving = result.savings("GOLCF+H1+H2", baseline="RDF")
        assert 0.0 < saving < 1.0

    def test_dummy_metric(self, result):
        rdf = result.total("RDF", "num_dummy_transfers")
        winner = result.total("GOLCF+H1+H2", "num_dummy_transfers")
        assert winner <= rdf

    def test_summary_lists_all_pipelines(self, result):
        text = result.summary()
        assert "RDF" in text and "GOLCF+H1+H2" in text

    def test_deterministic(self):
        def make():
            model = VideoRotationModel(
                num_servers=8, num_movies=30, capacity_movies=6, rng=7
            )
            return run_scenario(model.days(2), ["GOLCF"], base_seed=5)

        a, b = make(), make()
        assert a.series("GOLCF") == b.series("GOLCF")

    def test_zero_baseline_savings(self):
        result = ScenarioResult(pipelines=["X"])
        assert result.savings("X", baseline="X") == 0.0
