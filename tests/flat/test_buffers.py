"""FlatActionBuffer / FlatSchedule unit tests (arena storage layer)."""

import pickle

import numpy as np
import pytest

from repro.flat import FlatActionBuffer, FlatSchedule
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import (
    KIND_DELETE,
    KIND_TRANSFER,
    Schedule,
    actions_from_arrays,
)


def _fill(buf: FlatActionBuffer):
    buf.append_transfer(2, 7, 1)
    buf.append_delete(0, 3)
    buf.append_transfer(1, 7, 2)
    return [Transfer(2, 7, 1), Delete(0, 3), Transfer(1, 7, 2)]


def test_round_trip_to_actions():
    buf = FlatActionBuffer()
    expected = _fill(buf)
    assert buf.to_actions() == expected
    assert len(buf) == 3


def test_growth_preserves_prefix():
    buf = FlatActionBuffer(capacity=1)  # clamped to the minimum, then doubles
    expected = []
    for i in range(100):
        buf.append_transfer(i, i + 1, i + 2)
        expected.append(Transfer(i, i + 1, i + 2))
    assert len(buf) == 100
    assert buf.to_actions() == expected


def test_materialized_fields_are_plain_python_ints():
    buf = FlatActionBuffer()
    _fill(buf)
    for action in buf.to_actions():
        if isinstance(action, Transfer):
            fields = (action.target, action.obj, action.source)
        else:
            fields = (action.server, action.obj)
        for value in fields:
            assert type(value) is int, f"{action}: {type(value)}"


def test_columns_are_read_only_and_trimmed():
    buf = FlatActionBuffer(capacity=64)
    _fill(buf)
    kind, primary, obj, source = buf.columns()
    assert kind.shape == (3,)
    assert kind.tolist() == [KIND_TRANSFER, KIND_DELETE, KIND_TRANSFER]
    assert primary.tolist() == [2, 0, 1]
    with pytest.raises(ValueError):
        kind[0] = KIND_DELETE


def test_transfer_mask():
    buf = FlatActionBuffer()
    _fill(buf)
    assert buf.transfer_mask().tolist() == [True, False, True]


def test_actions_from_arrays_and_schedule_from_arrays():
    kinds = [KIND_TRANSFER, KIND_DELETE]
    actions = actions_from_arrays(kinds, [4, 2], [9, 9], [1, 0])
    assert actions == [Transfer(4, 9, 1), Delete(2, 9)]
    sched = Schedule.from_arrays(kinds, [4, 2], [9, 9], [1, 0])
    assert sched.actions() == actions


@pytest.fixture
def tiny():
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
    return RtspInstance.create(
        [1.0, 1.0], [2.0, 2.0, 2.0], costs, x_old, x_new
    )


def test_flat_schedule_is_lazy_until_iterated(tiny):
    buf = FlatActionBuffer()
    buf.append_transfer(2, 0, 0)
    buf.append_delete(0, 0)
    sched = FlatSchedule(buf)
    assert not sched.materialized
    assert len(sched) == 2            # answered from the arena
    assert sched.cost(tiny) == 2.0    # vectorized, still lazy
    assert not sched.materialized
    assert list(sched) == [Transfer(2, 0, 0), Delete(0, 0)]
    assert sched.materialized
    assert len(sched) == 2


def test_flat_schedule_validates_and_edits_like_a_schedule(tiny):
    buf = FlatActionBuffer()
    buf.append_transfer(2, 0, 0)
    buf.append_delete(0, 0)
    sched = FlatSchedule(buf)
    report = sched.validate(tiny)
    assert report.ok
    assert report.cost == 2.0
    # Post-materialization edits behave like a plain Schedule.
    sched.append(Delete(1, 1))
    assert len(sched) == 3
    assert not sched.validate(tiny).ok  # S1 must keep O1 under X_new


def test_flat_schedule_equality_with_object_schedule(tiny):
    buf = FlatActionBuffer()
    buf.append_transfer(2, 0, 0)
    obj_sched = Schedule([Transfer(2, 0, 0)])
    assert FlatSchedule(buf) == obj_sched


def test_flat_schedule_pickles(tiny):
    buf = FlatActionBuffer()
    buf.append_transfer(2, 0, 0)
    sched = FlatSchedule(buf)
    clone = pickle.loads(pickle.dumps(sched))
    assert clone.actions() == sched.actions()


def test_flat_cost_matches_object_cost_bitwise_on_fractional_data():
    rng = np.random.default_rng(9)
    m, n = 6, 30
    sizes = rng.uniform(0.1, 3.0, size=n)
    costs = rng.uniform(0.1, 7.0, size=(m, m))
    costs = (costs + costs.T) / 2
    np.fill_diagonal(costs, 0.0)
    x_old = np.zeros((m, n), dtype=np.int8)
    x_new = np.zeros((m, n), dtype=np.int8)
    x_old[0, 0] = x_new[0, 0] = 1
    caps = np.full(m, 1e9)
    inst = RtspInstance.create(sizes, caps, costs, x_old, x_new)
    buf = FlatActionBuffer()
    ref = Schedule()
    for k in range(n):
        t = int(rng.integers(0, m))
        s = inst.dummy
        buf.append_transfer(t, k, s)
        ref.append(Transfer(t, k, s))
    flat = FlatSchedule(buf)
    # Bit-identical, not approx: the arena cost accumulates in the same
    # left-to-right order as the object path.
    assert flat.cost(inst) == ref.cost(inst)
