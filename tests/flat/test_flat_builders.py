"""Flat-vs-reference differential suite + selection-policy tests.

The acceptance gate for the flat core: over the exact subsystem's
differential families, every builder x seed must produce a flat schedule
*byte-identical* to the reference object path, and the auto/on/off
selection policy must route builds correctly.
"""

import numpy as np
import pytest

from repro.core.base import get_builder
from repro.exact.differential import DEFAULT_FAMILIES, family_instances
from repro.flat import (
    FLAT_AUTO_CELLS,
    FlatSchedule,
    flat_build,
    flat_builder_names,
    flat_mode,
    flat_mode_override,
    set_flat_mode,
    use_flat,
)
from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError
from repro.workloads.regular import paper_instance

BUILDERS = flat_builder_names()
SEEDS = (0, 1, 2)


@pytest.fixture(autouse=True)
def _reset_flat_mode():
    yield
    set_flat_mode(None)


def test_all_paper_builders_have_flat_twins():
    assert BUILDERS == ["AR", "GMC", "GOLCF", "GSDF", "RDF"]


@pytest.mark.parametrize("family", DEFAULT_FAMILIES)
@pytest.mark.parametrize("builder", BUILDERS)
def test_flat_matches_reference_on_differential_families(family, builder):
    for inst in family_instances(family):
        for seed in SEEDS:
            ref = get_builder(builder).build(inst, rng=seed)
            flat = flat_build(builder, inst, rng=seed)
            assert isinstance(flat, FlatSchedule)
            assert ref.actions() == flat.actions(), (
                f"{family}/{builder}/seed={seed}: flat diverged"
            )


@pytest.mark.parametrize("builder", BUILDERS)
def test_flat_matches_reference_on_paper_workload(builder):
    inst = paper_instance(
        replicas=2, num_servers=12, num_objects=50, rng=99
    )
    for seed in SEEDS:
        ref = get_builder(builder).build(inst, rng=seed)
        flat = flat_build(builder, inst, rng=seed)
        assert ref.actions() == flat.actions()


def test_flat_build_rejects_unknown_builder():
    inst = paper_instance(replicas=2, num_servers=4, num_objects=8, rng=1)
    with pytest.raises(ConfigurationError, match="no flat implementation"):
        flat_build("H1", inst)


def _tiny_instance() -> RtspInstance:
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
    return RtspInstance.create(
        [1.0, 1.0], [2.0, 2.0, 2.0], costs, x_old, x_new
    )


def test_mode_on_routes_builders_through_flat_core():
    inst = _tiny_instance()
    set_flat_mode("on")
    sched = get_builder("GOLCF").build(inst, rng=0)
    assert isinstance(sched, FlatSchedule)


def test_mode_off_keeps_reference_core():
    inst = _tiny_instance()
    set_flat_mode("off")
    sched = get_builder("GOLCF").build(inst, rng=0)
    assert not isinstance(sched, FlatSchedule)


def test_auto_mode_thresholds_on_cell_count():
    small = _tiny_instance()
    assert flat_mode() == "auto"
    assert not use_flat(small)
    # A large instance is over the cell threshold without being built:
    # use_flat only reads the dimensions.
    big = paper_instance(
        replicas=2, num_servers=50, num_objects=1200, rng=3
    )
    assert big.num_servers * big.num_objects >= FLAT_AUTO_CELLS
    assert use_flat(big)


def test_mode_override_restores_previous_mode():
    set_flat_mode("off")
    with flat_mode_override("on"):
        assert flat_mode() == "on"
        with flat_mode_override(None):  # None forces env/default resolution
            assert flat_mode() == "auto"
        assert flat_mode() == "on"
    assert flat_mode() == "off"


def test_mode_override_restores_on_exception():
    """The process-global mode must not leak out of a raising block."""
    set_flat_mode(None)
    with pytest.raises(RuntimeError):
        with flat_mode_override("on"):
            assert flat_mode() == "on"
            raise RuntimeError("boom")
    assert flat_mode() == "auto"


def test_mode_override_rejects_bad_mode_without_clobbering():
    set_flat_mode("off")
    with pytest.raises(ConfigurationError):
        with flat_mode_override("bogus"):
            pass  # pragma: no cover - never entered
    assert flat_mode() == "off"


def test_env_variable_resolution(monkeypatch):
    set_flat_mode(None)
    monkeypatch.setenv("RTSP_FLAT", "on")
    assert flat_mode() == "on"
    monkeypatch.setenv("RTSP_FLAT", "0")
    assert flat_mode() == "off"
    monkeypatch.setenv("RTSP_FLAT", "bogus")
    with pytest.raises(ConfigurationError):
        flat_mode()
    # An explicit set overrides the environment.
    set_flat_mode("auto")
    assert flat_mode() == "auto"


def test_set_flat_mode_rejects_unknown():
    with pytest.raises(ConfigurationError):
        set_flat_mode("fastest")


def test_flat_schedule_feeds_optimizer_pipeline():
    # Downstream consumers (H1/H2/OP1) must accept a FlatSchedule
    # transparently — materialization happens on first iteration.
    from repro.core import get_optimizer

    inst = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=5)
    flat = flat_build("RDF", inst, rng=4)
    ref = get_builder("RDF").build(inst, rng=4)
    out_flat = get_optimizer("H1").optimize(inst, flat)
    out_ref = get_optimizer("H1").optimize(inst, ref)
    assert out_flat.actions() == out_ref.actions()
    assert out_flat.validate(inst).ok
