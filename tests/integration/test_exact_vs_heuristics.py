"""Integration: heuristics sandwiched against the exact optimum.

On instances small enough for branch and bound, every heuristic cost must
dominate the optimum, and the paper's winning pipeline should land close
to it.
"""

import numpy as np
import pytest

from repro.core import build_pipeline, solve_exact
from repro.model.instance import RtspInstance
from repro.network.costmatrix import uniform_cost_matrix
from repro.workloads.regular import regular_placement_pair
from repro.workloads.sizes import constant_sizes
from repro.workloads.capacity import max_load_capacities


def small_instance(seed, m=4, n=4, r=2):
    rng = np.random.default_rng(seed)
    x_old, x_new = regular_placement_pair(m, n, r, rng=rng)
    sizes = constant_sizes(n, 1.0)
    capacities = max_load_capacities(x_old, x_new, sizes)
    weights = rng.integers(1, 10, size=(m, m)).astype(float)
    costs = (weights + weights.T) / 2
    np.fill_diagonal(costs, 0.0)
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new)


PIPELINES = ["RDF", "GSDF", "AR", "GOLCF", "GOLCF+H1+H2+OP1", "RDF+H1+H2+OP1"]


def _solve_with_best_seed(inst, max_nodes=400_000):
    """Seed branch and bound with the best heuristic schedule found."""
    best = None
    for spec in ("GOLCF+H1+H2+OP1", "RDF+H1+H2+OP1"):
        for run_seed in range(3):
            cand = build_pipeline(spec).run(inst, rng=run_seed)
            if best is None or cand.cost(inst) < best.cost(inst):
                best = cand
    return solve_exact(inst, initial=best, max_nodes=max_nodes)


@pytest.mark.parametrize("seed", range(5))
def test_heuristics_never_beat_exact(seed):
    inst = small_instance(seed, n=3)
    result = _solve_with_best_seed(inst)
    assert result.schedule.validate(inst).ok
    if not result.complete:
        pytest.skip("search budget exhausted; optimum not certified")
    for spec in PIPELINES:
        for run_seed in range(3):
            schedule = build_pipeline(spec).run(inst, rng=run_seed)
            assert schedule.cost(inst) >= result.cost - 1e-9, (spec, run_seed)


@pytest.mark.parametrize("seed", range(5))
def test_winner_pipeline_close_to_optimum(seed):
    """GOLCF+H1+H2+OP1's best-of-3 lands within 60% of the optimum on
    these tiny zero-slack instances (typically much closer)."""
    inst = small_instance(seed, n=3)
    result = _solve_with_best_seed(inst)
    if not result.complete:
        pytest.skip("search budget exhausted; optimum not certified")
    best = min(
        build_pipeline("GOLCF+H1+H2+OP1").run(inst, rng=s).cost(inst)
        for s in range(3)
    )
    assert best <= 1.6 * result.cost + 1e-9


def test_exact_incomplete_still_sound():
    inst = small_instance(0, m=5, n=5, r=2)
    seed_schedule = build_pipeline("GOLCF").run(inst, rng=0)
    result = solve_exact(inst, initial=seed_schedule, max_nodes=500)
    assert result.schedule.validate(inst).ok
    assert result.cost <= seed_schedule.cost(inst) + 1e-9
