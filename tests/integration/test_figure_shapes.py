"""Integration: the paper's qualitative figure shapes hold at small scale.

These are the claims §5.2 makes about Figures 4–9, checked on the small
harness scale (20 servers / 100 objects, 3 repetitions). Absolute values
differ from the paper (different topology draw, smaller N); the *shape*
— who wins, and which direction curves move — is what we assert.
"""

import numpy as np
import pytest

from repro.experiments.config import SCALES, ExperimentScale
from repro.experiments.figures import FIGURES
from repro.experiments.runner import run_figure

SCALE = ExperimentScale("shape-test", num_servers=15, num_objects=60,
                        repetitions=3)


@pytest.fixture(scope="module")
def fig4():
    return run_figure(FIGURES["fig4"], SCALE)


@pytest.fixture(scope="module")
def fig5():
    return run_figure(FIGURES["fig5"], SCALE)


@pytest.fixture(scope="module")
def fig8():
    return run_figure(FIGURES["fig8"], SCALE)


@pytest.fixture(scope="module")
def fig9():
    return run_figure(FIGURES["fig9"], SCALE)


class TestFig4Shape:
    def test_dummies_drop_as_replicas_increase(self, fig4):
        """More replicas => fewer chances to destroy the last source."""
        for pipeline in ("AR", "GOLCF"):
            series = fig4.series(pipeline)
            assert series[0] > series[-1]

    def test_h1_h2_reduce_dummies_everywhere(self, fig4):
        for base in ("AR", "GOLCF"):
            base_series = fig4.series(base)
            opt_series = fig4.series(f"{base}+H1+H2")
            assert all(o <= b + 1e-9 for o, b in zip(opt_series, base_series))

    def test_h1_h2_nearly_nullify_dummies_at_two_replicas(self, fig4):
        """The paper's headline observation on Fig. 4."""
        r2 = fig4.spec.x_values.index(2)
        assert fig4.series("AR+H1+H2")[r2] <= 1.0
        assert fig4.series("GOLCF+H1+H2")[r2] <= 1.0

    def test_substantial_dummies_without_h1h2_at_r1(self, fig4):
        assert fig4.series("AR")[0] > 5
        assert fig4.series("GOLCF")[0] > 5


class TestFig5Shape:
    def test_winner_is_cheapest_everywhere(self, fig5):
        winner = fig5.series("GOLCF+H1+H2+OP1")
        for other in ("AR", "GOLCF", "GOLCF+OP1"):
            series = fig5.series(other)
            assert all(w <= o + 1e-9 for w, o in zip(winner, series))

    def test_golcf_beats_ar(self, fig5):
        golcf = fig5.series("GOLCF")
        ar = fig5.series("AR")
        assert np.mean(golcf) < np.mean(ar)

    def test_h1h2_gap_shrinks_with_replicas(self, fig5):
        """Savings from H1+H2 come from removed dummies, which vanish as
        replicas increase."""
        base = np.array(fig5.series("GOLCF+OP1"))
        winner = np.array(fig5.series("GOLCF+H1+H2+OP1"))
        savings = (base - winner) / base
        assert savings[0] > savings[-1] - 1e-9


class TestFig8Shape:
    def test_h1h2_exploit_slack(self, fig8):
        """Dummies with H1+H2 drop as more servers gain extra capacity."""
        series = fig8.series("GOLCF+H1+H2")
        assert series[-1] <= series[0]
        assert series[-1] <= 1.0  # near zero at full slack

    def test_plain_golcf_mostly_flat(self, fig8):
        """Standalone GOLCF cannot exploit slack much (its plot is almost
        flat in the paper)."""
        series = np.array(fig8.series("GOLCF"))
        h1h2 = np.array(fig8.series("GOLCF+H1+H2"))
        # GOLCF's relative improvement from slack is much smaller than the
        # gap to the H1+H2 curve
        assert series.min() >= h1h2.max() - 1e-9

    def test_h1h2_below_golcf_everywhere(self, fig8):
        golcf = fig8.series("GOLCF")
        h1h2 = fig8.series("GOLCF+H1+H2")
        assert all(h <= g + 1e-9 for h, g in zip(h1h2, golcf))


class TestFig9Shape:
    def test_winner_cheaper_at_every_slack_level(self, fig9):
        base = fig9.series("GOLCF+OP1")
        winner = fig9.series("GOLCF+H1+H2+OP1")
        assert all(w <= b + 1e-9 for w, b in zip(winner, base))

    def test_winner_strictly_cheaper_somewhere(self, fig9):
        base = np.array(fig9.series("GOLCF+OP1"))
        winner = np.array(fig9.series("GOLCF+H1+H2+OP1"))
        assert (winner < base - 1e-9).any()
