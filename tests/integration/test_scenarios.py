"""Integration: the motivating end-to-end scenarios.

Mirrors the examples as assertions: the video-server rotation (§2.1) and
a CDN flash-crowd rebalance, both driving the full pipeline stack through
the placement substrate.
"""

import numpy as np
import pytest

from repro.core import build_pipeline
from repro.model.instance import RtspInstance
from repro.network import cost_matrix_from_topology, waxman_topology
from repro.placement import access_cost, greedy_placement
from repro.workloads import VideoRotationModel, zipf_weights
from repro.workloads.zipf import sample_requests


class TestVideoRotation:
    @pytest.fixture(scope="class")
    def model(self):
        return VideoRotationModel(
            num_servers=10, num_movies=40, capacity_movies=8,
            drift=0.15, releases_per_day=2, rng=42,
        )

    def test_week_of_valid_transitions(self, model):
        naive_total, winner_total = 0.0, 0.0
        for day, instance in enumerate(model.days(5)):
            naive = build_pipeline("RDF").run(instance, rng=day)
            winner = build_pipeline("GOLCF+H1+H2+OP1").run(instance, rng=day)
            assert naive.validate(instance).ok
            assert winner.validate(instance).ok
            naive_total += naive.cost(instance)
            winner_total += winner.cost(instance)
        # the winner pipeline must clearly beat naive scheduling over a week
        assert winner_total < 0.8 * naive_total

    def test_churn_is_nonzero_every_day(self, model):
        for instance in model.days(3):
            outstanding, _ = instance.diff_counts()
            assert outstanding > 0


class TestCdnRebalance:
    @pytest.fixture(scope="class")
    def scenario(self):
        rng = np.random.default_rng(5)
        topo = waxman_topology(15, alpha=0.6, beta=0.3, rng=rng)
        costs = cost_matrix_from_topology(topo)
        n = 40
        sizes = np.full(n, 100.0)
        capacities = np.full(15, 8 * 100.0)
        weights = zipf_weights(n, 0.9)
        demand_old = sample_requests(weights, 20_000, 15, rng=rng).astype(float)
        x_old = greedy_placement(costs, sizes, capacities, demand_old, rng=rng)
        demand_new = demand_old.copy()
        crowd = rng.choice(15, size=4, replace=False)
        for pop in crowd:
            demand_new[pop] = demand_new[pop][rng.permutation(n)] * 6.0
        x_new = greedy_placement(costs, sizes, capacities, demand_new, rng=rng)
        instance = RtspInstance.create(sizes, capacities, costs, x_old, x_new)
        return instance, costs, sizes, demand_new, x_new

    def test_placement_actually_improves_access_cost(self, scenario):
        instance, costs, sizes, demand_new, x_new = scenario
        before = access_cost(instance.x_old, costs, sizes, demand_new)
        after = access_cost(x_new, costs, sizes, demand_new)
        assert after < before

    def test_transition_schedulable_by_every_pipeline(self, scenario):
        instance = scenario[0]
        for spec in ("RDF", "AR", "GOLCF", "GMC", "GOLCF+H1+H2+OP1"):
            schedule = build_pipeline(spec).run(instance, rng=0)
            assert schedule.validate(instance).ok, spec

    def test_winner_dominates_naive(self, scenario):
        instance = scenario[0]
        naive = build_pipeline("RDF").run(instance, rng=1)
        winner = build_pipeline("GOLCF+H1+H2+OP1").run(instance, rng=1)
        assert winner.cost(instance) < naive.cost(instance)
        assert winner.count_dummy_transfers(
            instance
        ) <= naive.count_dummy_transfers(instance)
