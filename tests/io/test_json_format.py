"""Tests for JSON serialization."""

import json

import numpy as np
import pytest

from repro.core import build_pipeline
from repro.io import (
    failure_trace_from_dict,
    failure_trace_to_dict,
    fault_plan_from_dict,
    fault_plan_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_failure_trace,
    load_fault_plan,
    load_instance,
    load_schedule,
    save_failure_trace,
    save_fault_plan,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.robust import FaultPlan, execute_with_repair
from repro.robust.faults import LinkSlowdown, ServerCrash, TransferFault
from repro.util.errors import ConfigurationError
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=6, num_objects=12, rng=1)


@pytest.fixture(scope="module")
def schedule(instance):
    return build_pipeline("GOLCF+H1+H2").run(instance, rng=0)


class TestInstanceRoundTrip:
    def test_dict_round_trip(self, instance):
        restored = instance_from_dict(instance_to_dict(instance))
        assert (restored.x_old == instance.x_old).all()
        assert (restored.x_new == instance.x_new).all()
        assert np.allclose(restored.costs, instance.costs)
        assert np.allclose(restored.sizes, instance.sizes)
        assert np.allclose(restored.capacities, instance.capacities)

    def test_file_round_trip(self, instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        restored = load_instance(path)
        assert (restored.x_new == instance.x_new).all()

    def test_json_serialisable(self, instance):
        json.dumps(instance_to_dict(instance))  # no numpy leakage

    def test_format_tag_checked(self, instance):
        data = instance_to_dict(instance)
        data["format"] = "something-else"
        with pytest.raises(ConfigurationError, match="format"):
            instance_from_dict(data)

    def test_missing_key(self, instance):
        data = instance_to_dict(instance)
        del data["sizes"]
        with pytest.raises(ConfigurationError, match="missing"):
            instance_from_dict(data)

    def test_revalidates_feasibility(self, instance):
        data = instance_to_dict(instance)
        data["capacities"] = [0.0] * instance.num_servers
        with pytest.raises(Exception):
            instance_from_dict(data)


class TestScheduleRoundTrip:
    def test_dict_round_trip(self, schedule):
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored == schedule

    def test_file_round_trip(self, schedule, instance, tmp_path):
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        restored = load_schedule(path)
        assert restored == schedule
        assert restored.validate(instance).ok

    def test_compact_rows(self):
        s = Schedule([Transfer(1, 2, 3), Delete(4, 5)])
        data = schedule_to_dict(s)
        assert data["actions"] == [["T", 1, 2, 3], ["D", 4, 5]]

    def test_format_tag_checked(self):
        with pytest.raises(ConfigurationError, match="format"):
            schedule_from_dict({"format": "nope", "actions": []})

    @pytest.mark.parametrize(
        "row",
        [[], ["X", 1, 2], ["T", 1, 2], ["D", 1, 2, 3]],
    )
    def test_malformed_rows(self, row):
        with pytest.raises(ConfigurationError):
            schedule_from_dict({"format": "rtsp-schedule/1", "actions": [row]})

    def test_empty_schedule(self):
        restored = schedule_from_dict(schedule_to_dict(Schedule()))
        assert len(restored) == 0


class TestFaultPlanRoundTrip:
    def plan(self):
        return FaultPlan(
            transfer_faults=(TransferFault(3), TransferFault(7)),
            crashes=(ServerCrash(1.5, 0),),
            slowdowns=(LinkSlowdown(0.5, 1, 2, 4.0),),
            rate=0.2,
            seed=11,
            horizon=100.0,
        )

    def test_dict_round_trip(self):
        plan = self.plan()
        assert fault_plan_from_dict(fault_plan_to_dict(plan)) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path) == plan

    def test_json_serialisable(self):
        json.dumps(fault_plan_to_dict(self.plan()))

    def test_generated_plan_round_trips(self, instance):
        plan = FaultPlan.generate(instance, 0.3, seed=4, horizon=50.0)
        assert fault_plan_from_dict(fault_plan_to_dict(plan)) == plan

    def test_format_tag_checked(self):
        with pytest.raises(ConfigurationError, match="format"):
            fault_plan_from_dict({"format": "nope"})

    def test_missing_key(self):
        data = fault_plan_to_dict(self.plan())
        del data["crashes"]
        with pytest.raises(ConfigurationError, match="missing"):
            fault_plan_from_dict(data)

    def test_revalidates_events(self):
        data = fault_plan_to_dict(self.plan())
        data["slowdowns"] = [[0.0, 0, 1, 0.25]]  # factor < 1 is invalid
        with pytest.raises(ConfigurationError):
            fault_plan_from_dict(data)


class TestFailureTraceRoundTrip:
    @pytest.fixture(scope="class")
    def events(self, instance):
        plan = FaultPlan(crashes=(ServerCrash(time=1.0, server=0),))
        report = execute_with_repair(instance, plan, rng=0)
        return report.events

    def test_dict_round_trip(self, events):
        restored = failure_trace_from_dict(failure_trace_to_dict(events))
        assert restored == list(events)

    def test_file_round_trip(self, events, tmp_path):
        path = tmp_path / "trace.json"
        save_failure_trace(events, path)
        assert load_failure_trace(path) == list(events)

    def test_json_serialisable(self, events):
        json.dumps(failure_trace_to_dict(events))

    def test_format_tag_checked(self):
        with pytest.raises(ConfigurationError, match="format"):
            failure_trace_from_dict({"format": "nope", "events": []})

    def test_missing_events(self):
        with pytest.raises(ConfigurationError, match="events"):
            failure_trace_from_dict({"format": "rtsp-failure-trace/1"})

    def test_malformed_row(self):
        with pytest.raises(ConfigurationError, match="5 fields"):
            failure_trace_from_dict(
                {"format": "rtsp-failure-trace/1", "events": [["ok", 0]]}
            )
