"""Tests for the action value objects."""

import pytest

from repro.model.actions import Delete, Transfer, is_delete, is_transfer


class TestTransfer:
    def test_fields(self):
        t = Transfer(target=1, obj=2, source=3)
        assert (t.target, t.obj, t.source) == (1, 2, 3)

    def test_immutability(self):
        t = Transfer(1, 2, 3)
        with pytest.raises(AttributeError):
            t.target = 5

    def test_value_equality(self):
        assert Transfer(1, 2, 3) == Transfer(1, 2, 3)
        assert Transfer(1, 2, 3) != Transfer(1, 2, 4)

    def test_hashable(self):
        assert len({Transfer(1, 2, 3), Transfer(1, 2, 3)}) == 1

    def test_with_source(self):
        t = Transfer(1, 2, 3)
        t2 = t.with_source(9)
        assert t2 == Transfer(1, 2, 9)
        assert t == Transfer(1, 2, 3)  # original untouched

    def test_str(self):
        assert str(Transfer(1, 2, 3)) == "T(1,2,3)"


class TestDelete:
    def test_fields(self):
        d = Delete(server=4, obj=5)
        assert (d.server, d.obj) == (4, 5)

    def test_value_equality(self):
        assert Delete(1, 2) == Delete(1, 2)
        assert Delete(1, 2) != Delete(2, 1)

    def test_str(self):
        assert str(Delete(4, 5)) == "D(4,5)"


class TestPredicates:
    def test_is_transfer(self):
        assert is_transfer(Transfer(0, 0, 1))
        assert not is_transfer(Delete(0, 0))

    def test_is_delete(self):
        assert is_delete(Delete(0, 0))
        assert not is_delete(Transfer(0, 0, 1))
