"""Free-space accounting must not drift (regression for the ledger).

Historically ``SystemState`` accumulated ``_free`` with bare float adds
per action; over enough evict/deliver cycles on fractional sizes the
accumulated error random-walks past ``CAPACITY_EPS`` and flips
``has_space``/validity decisions. The ledger fixes this two ways:

* integral sizes and capacities — an int64 ledger mirrored into the
  published float array, so every value is *exact*;
* fractional inputs — Neumaier compensated summation over the deltas,
  keeping the published value within one rounding of the true sum no
  matter how many actions land.

These tests drive long apply/undo churn and compare the published free
space against a from-scratch ``math.fsum`` recomputation.
"""

import math

import numpy as np
import pytest

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.state import CAPACITY_EPS, SystemState


def _true_free(state: SystemState, server: int) -> float:
    """Free space recomputed from scratch with exact summation."""
    inst = state.instance
    held = np.flatnonzero(state.placement()[server]).tolist()
    return float(inst.capacities[server]) - math.fsum(
        float(inst.sizes[k]) for k in held
    )


def _churn(state: SystemState, server: int, objs, cycles: int) -> None:
    """Repeatedly deliver and evict ``objs`` at ``server``."""
    for _ in range(cycles):
        for k in objs:
            state.apply(Transfer(server, k, state.instance.dummy))
        for k in objs:
            state.apply(Delete(server, k))


def test_integral_sizes_stay_exact_under_churn():
    n = 6
    sizes = np.array([1.0, 3.0, 7.0, 2.0, 5.0, 4.0])
    x_old = np.zeros((2, n), dtype=np.int8)
    x_new = np.zeros((2, n), dtype=np.int8)
    x_new[1, 0] = x_old[1, 0] = 1  # keep the diff non-empty elsewhere
    inst = RtspInstance.create(
        sizes, [50.0, 50.0], np.zeros((2, 2)), x_old, x_new
    )
    state = SystemState(inst)
    _churn(state, 0, range(n), cycles=5000)
    # Exactly the starting value — not "close to".
    assert state.free_space(0) == 50.0
    assert float(state.free_space(0)) == _true_free(state, 0)


def test_fractional_sizes_bounded_by_compensated_summation():
    # Mixed magnitudes make naive accumulation drift fast: each
    # +big/-big cycle loses the small object's low bits. 20k cycles of
    # the old code drifts by ~1e-6 > CAPACITY_EPS; the compensated
    # ledger stays within a few ulps of the fsum truth.
    sizes = np.array([1e8 + 0.1, 0.1 + 2**-40, 3.7, 0.25 + 2**-45])
    n = len(sizes)
    x_old = np.zeros((2, n), dtype=np.int8)
    x_new = np.zeros((2, n), dtype=np.int8)
    x_old[1, 2] = x_new[1, 2] = 1
    inst = RtspInstance.create(
        sizes, [2e8, 2e8], np.zeros((2, 2)), x_old, x_new
    )
    state = SystemState(inst)
    _churn(state, 0, range(n), cycles=20000)
    truth = _true_free(state, 0)
    err = abs(state.free_space(0) - truth)
    assert err < 1e-7, f"published free space drifted by {err:g}"
    # The drift bound must be far inside the capacity comparison slack,
    # or has_space decisions become churn-history-dependent.
    assert err < CAPACITY_EPS / 10


def test_fractional_drift_regression_naive_accumulation_fails():
    # Document the failure mode the ledger fixed: simulate the old
    # ``_free[i] += delta`` accounting over the same action stream and
    # show it drifts past what the ledger publishes.
    sizes = np.array([1e8 + 0.1, 0.1 + 2**-40, 3.7, 0.25 + 2**-45])
    n = len(sizes)
    x_old = np.zeros((2, n), dtype=np.int8)
    x_new = np.zeros((2, n), dtype=np.int8)
    x_old[1, 2] = x_new[1, 2] = 1
    inst = RtspInstance.create(
        sizes, [2e8, 2e8], np.zeros((2, 2)), x_old, x_new
    )
    state = SystemState(inst)
    naive = float(inst.capacities[0])
    for _ in range(20000):
        for k in range(n):
            state.apply(Transfer(0, k, inst.dummy))
            naive -= float(sizes[k])
        for k in range(n):
            state.apply(Delete(0, k))
            naive += float(sizes[k])
    truth = _true_free(state, 0)
    naive_err = abs(naive - truth)
    ledger_err = abs(state.free_space(0) - truth)
    assert naive_err > CAPACITY_EPS, (
        "churn no longer reproduces the drift this regression guards"
    )
    assert ledger_err < naive_err / 1000


def test_undo_restores_exact_free_space():
    sizes = np.array([2.5, 1.25, 0.3])
    x_old = np.array([[1, 0, 1], [0, 1, 0]], dtype=np.int8)
    x_new = np.array([[0, 1, 1], [1, 0, 0]], dtype=np.int8)
    caps = np.array([10.0, 10.0])
    inst = RtspInstance.create(
        sizes, caps, np.zeros((2, 2)), x_old, x_new
    )
    state = SystemState(inst)
    before = state.free_space(0)
    action = Transfer(0, 1, inst.dummy)
    for _ in range(1000):
        state.apply(action)
        state.undo(action)
    assert state.free_space(0) == before


def test_copy_preserves_ledger_kind():
    frac = RtspInstance.create(
        [0.5], [2.0, 2.0], np.zeros((2, 2)),
        np.array([[1], [0]], dtype=np.int8),
        np.array([[0], [1]], dtype=np.int8),
    )
    integral = RtspInstance.create(
        [1.0], [2.0, 2.0], np.zeros((2, 2)),
        np.array([[1], [0]], dtype=np.int8),
        np.array([[0], [1]], dtype=np.int8),
    )
    for inst in (frac, integral):
        state = SystemState(inst)
        state.apply(Transfer(1, 0, 0))
        dup = state.copy()
        dup.apply(Delete(0, 0))
        # The copy's ledger advanced; the original's did not.
        assert state.free_space(0) != dup.free_space(0)
        assert dup.free_space(0) == pytest.approx(
            _true_free(dup, 0), abs=1e-12
        )
