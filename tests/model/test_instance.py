"""Tests for RtspInstance."""

import numpy as np
import pytest

from repro.model.instance import RtspInstance
from repro.util.errors import ConfigurationError, InfeasibleInstanceError


def make(sizes=(1.0, 1.0), capacities=(2.0, 2.0), **kw):
    x_old = kw.pop("x_old", np.array([[1, 0], [0, 1]], dtype=np.int8))
    x_new = kw.pop("x_new", np.array([[0, 1], [1, 0]], dtype=np.int8))
    costs = kw.pop("costs", np.array([[0.0, 2.0], [2.0, 0.0]]))
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new, **kw)


class TestConstruction:
    def test_plain_costs_get_dummy_extended(self):
        inst = make()
        assert inst.costs.shape == (3, 3)
        assert inst.dummy == 2
        assert inst.dummy_cost == 3.0  # a * (max(2) + 1)

    def test_dummy_constant(self):
        inst = make(dummy_constant=2.0)
        assert inst.dummy_cost == 6.0

    def test_pre_extended_costs_accepted(self):
        ext = np.array(
            [[0.0, 2.0, 9.0], [2.0, 0.0, 9.0], [9.0, 9.0, 0.0]]
        )
        inst = make(costs=ext)
        assert inst.dummy_cost == 9.0

    def test_wrong_cost_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            make(costs=np.zeros((4, 4)))

    def test_shape_mismatches_rejected(self):
        with pytest.raises(ConfigurationError):
            make(sizes=(1.0,))
        with pytest.raises(ConfigurationError):
            make(capacities=(1.0,))
        with pytest.raises(ConfigurationError):
            make(x_new=np.zeros((3, 2), dtype=np.int8))

    def test_arrays_frozen(self):
        inst = make()
        with pytest.raises(ValueError):
            inst.x_old[0, 0] = 0
        with pytest.raises(ValueError):
            inst.costs[0, 1] = 5.0

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            make(sizes=(0.0, 1.0))


class TestFeasibility:
    def test_infeasible_old_scheme(self):
        with pytest.raises(InfeasibleInstanceError):
            make(capacities=(0.5, 2.0))

    def test_infeasible_new_scheme(self):
        # both objects (1.5 + 1.0 = 2.5) exceed server 0's capacity of 2
        x_new = np.array([[1, 1], [0, 0]], dtype=np.int8)
        with pytest.raises(InfeasibleInstanceError):
            make(sizes=(1.5, 1.0), x_new=x_new)

    def test_validation_can_be_skipped(self):
        inst = make(capacities=(0.5, 2.0), validate=False)
        with pytest.raises(InfeasibleInstanceError):
            inst.check_feasible()


class TestDerivedViews:
    def test_dimensions(self):
        inst = make()
        assert inst.num_servers == 2
        assert inst.num_objects == 2

    def test_diff_counts(self):
        inst = make()
        assert inst.diff_counts() == (2, 2)

    def test_outstanding_superfluous(self):
        inst = make()
        assert inst.outstanding().tolist() == [[0, 1], [1, 0]]
        assert inst.superfluous().tolist() == [[1, 0], [0, 1]]

    def test_loads(self):
        inst = make(sizes=(2.0, 3.0), capacities=(5.0, 5.0))
        assert inst.old_loads().tolist() == [2.0, 3.0]
        assert inst.new_loads().tolist() == [3.0, 2.0]

    def test_transfer_cost(self):
        inst = make(sizes=(2.0, 3.0), capacities=(5.0, 5.0))
        assert inst.transfer_cost(0, 1, 1) == 6.0  # size 3 * cost 2
        assert inst.transfer_cost(0, 0, inst.dummy) == 2.0 * 3.0
