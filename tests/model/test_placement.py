"""Tests for replication-matrix helpers."""

import numpy as np
import pytest

from repro.model.placement import (
    diff_counts,
    loads,
    outstanding_mask,
    overlap_fraction,
    placement_fits,
    replica_counts,
    superfluous_mask,
)


@pytest.fixture
def pair():
    x_old = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.int8)
    x_new = np.array([[1, 0, 1], [0, 1, 0]], dtype=np.int8)
    return x_old, x_new


class TestLoads:
    def test_weighted_sum(self):
        x = np.array([[1, 0, 1], [0, 1, 0]], dtype=np.int8)
        sizes = np.array([2.0, 3.0, 5.0])
        assert loads(x, sizes).tolist() == [7.0, 3.0]

    def test_mismatched_sizes(self):
        with pytest.raises(ValueError):
            loads(np.zeros((2, 3), dtype=np.int8), np.ones(2))


class TestPlacementFits:
    def test_fits(self):
        x = np.array([[1, 1]], dtype=np.int8)
        assert placement_fits(x, np.array([1.0, 2.0]), np.array([3.0]))

    def test_does_not_fit(self):
        x = np.array([[1, 1]], dtype=np.int8)
        assert not placement_fits(x, np.array([2.0, 2.0]), np.array([3.0]))

    def test_exact_fit_with_tolerance(self):
        x = np.array([[1]], dtype=np.int8)
        assert placement_fits(x, np.array([3.0]), np.array([3.0]))

    def test_mismatched_capacities(self):
        with pytest.raises(ValueError):
            placement_fits(np.zeros((2, 1), dtype=np.int8), np.ones(1), np.ones(3))


class TestMasks:
    def test_outstanding(self, pair):
        x_old, x_new = pair
        assert outstanding_mask(x_old, x_new).tolist() == [[0, 0, 1], [0, 0, 0]]

    def test_superfluous(self, pair):
        x_old, x_new = pair
        assert superfluous_mask(x_old, x_new).tolist() == [[0, 1, 0], [0, 0, 1]]

    def test_diff_counts(self, pair):
        assert diff_counts(*pair) == (1, 2)

    def test_identical_schemes(self):
        x = np.eye(3, dtype=np.int8)
        assert diff_counts(x, x) == (0, 0)

    def test_shape_mismatch(self, pair):
        with pytest.raises(ValueError):
            outstanding_mask(pair[0], np.zeros((3, 3), dtype=np.int8))


class TestOverlap:
    def test_zero_overlap(self):
        x_old = np.array([[1, 0], [0, 1]], dtype=np.int8)
        x_new = np.array([[0, 1], [1, 0]], dtype=np.int8)
        assert overlap_fraction(x_old, x_new) == 0.0

    def test_full_overlap(self):
        x = np.array([[1, 0], [0, 1]], dtype=np.int8)
        assert overlap_fraction(x, x) == 1.0

    def test_half_overlap(self, pair):
        x_old, x_new = pair
        # X_new has 3 replicas; 2 shared with X_old
        assert overlap_fraction(x_old, x_new) == pytest.approx(2 / 3)

    def test_empty_new_scheme(self):
        x_old = np.array([[1]], dtype=np.int8)
        x_new = np.array([[0]], dtype=np.int8)
        assert overlap_fraction(x_old, x_new) == 1.0


class TestReplicaCounts:
    def test_column_sums(self, pair):
        x_old, _ = pair
        assert replica_counts(x_old).tolist() == [1, 2, 1]
