"""Tests for Schedule replay, validation and accounting."""

import numpy as np
import pytest

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.util.errors import InvalidActionError, InvalidScheduleError


@pytest.fixture
def inst():
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
    return RtspInstance.create([2.0, 1.0], [2.0, 2.0, 2.0], costs, x_old, x_new)


@pytest.fixture
def good(inst):
    return Schedule([Transfer(2, 0, 0), Delete(0, 0)])


class TestSequenceProtocol:
    def test_len_iter_getitem(self, good):
        assert len(good) == 2
        assert list(good)[0] == Transfer(2, 0, 0)
        assert good[1] == Delete(0, 0)

    def test_equality(self, good):
        assert good == Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        assert good != Schedule([Delete(0, 0)])

    def test_editing(self):
        s = Schedule()
        s.append(Delete(0, 0))
        s.insert(0, Transfer(1, 0, 0))
        s.extend([Delete(1, 0)])
        assert len(s) == 3
        assert s.pop(2) == Delete(1, 0)

    def test_move(self):
        s = Schedule([Delete(0, 0), Delete(1, 1), Delete(2, 0)])
        s.move(2, 0)
        assert s[0] == Delete(2, 0)
        assert s[1] == Delete(0, 0)

    def test_copy_is_shallow_fork(self, good):
        dup = good.copy()
        dup.append(Delete(1, 1))
        assert len(good) == 2 and len(dup) == 3


class TestViews:
    def test_transfers_and_deletions(self, good):
        assert good.transfers() == [Transfer(2, 0, 0)]
        assert good.deletions() == [Delete(0, 0)]

    def test_dummy_positions(self, inst):
        s = Schedule([Delete(0, 0), Transfer(2, 0, inst.dummy)])
        assert s.dummy_transfer_positions(inst) == [1]
        assert s.count_dummy_transfers(inst) == 1


class TestCost:
    def test_transfer_cost(self, inst, good):
        assert good.cost(inst) == 4.0  # size 2 * cost 2

    def test_deletions_are_free(self, inst):
        assert Schedule([Delete(0, 0)]).cost(inst) == 0.0

    def test_action_cost(self, inst, good):
        assert good.action_cost(inst, 0) == 4.0
        assert good.action_cost(inst, 1) == 0.0

    def test_dummy_transfer_cost(self, inst):
        s = Schedule([Delete(0, 0), Transfer(2, 0, inst.dummy)])
        assert s.cost(inst) == 2.0 * inst.dummy_cost


class TestValidation:
    def test_valid_schedule(self, inst, good):
        report = good.validate(inst)
        assert report.ok
        assert report.cost == 4.0
        assert report.dummy_transfers == 0
        assert good.is_valid(inst)

    def test_invalid_action_reported_with_position(self, inst):
        s = Schedule([Delete(0, 0), Transfer(2, 0, 0)])  # source deleted
        report = s.validate(inst)
        assert not report.ok
        assert report.position == 1
        assert "does not replicate" in report.message

    def test_wrong_final_state(self, inst):
        s = Schedule([Transfer(2, 0, 0)])  # superfluous replica remains
        report = s.validate(inst)
        assert not report.ok
        assert report.position is None
        assert "differs from X_new" in report.message

    def test_cost_accumulated_up_to_failure(self, inst):
        s = Schedule([Transfer(2, 0, 0), Delete(1, 0)])
        report = s.validate(inst)
        assert not report.ok
        assert report.cost == 4.0

    def test_require_valid_raises(self, inst):
        with pytest.raises(InvalidScheduleError):
            Schedule([Delete(2, 0)]).require_valid(inst)

    def test_replay_returns_final_state(self, inst, good):
        state = good.replay(inst)
        assert state.matches(inst.x_new)

    def test_replay_partial(self, inst, good):
        state = good.replay(inst, stop=1)
        assert state.holds(2, 0) and state.holds(0, 0)

    def test_replay_raises_on_invalid(self, inst):
        with pytest.raises(InvalidActionError):
            Schedule([Transfer(2, 0, 1)]).replay(inst)

    def test_empty_schedule_valid_iff_schemes_equal(self, inst):
        assert not Schedule().is_valid(inst)
        same = RtspInstance.create(
            inst.sizes,
            inst.capacities,
            inst.costs,
            inst.x_old,
            inst.x_old,
        )
        assert Schedule().is_valid(same)

    def test_summary_mentions_validity(self, inst, good):
        assert "valid" in good.summary(inst)
        assert "INVALID" in Schedule([Delete(2, 0)]).summary(inst)
