"""Tests for the SystemState simulation machine."""

import numpy as np
import pytest

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.state import SystemState
from repro.util.errors import InvalidActionError


@pytest.fixture
def inst():
    # 3 servers, 2 objects; S0:{O0}, S1:{O1}; target moves O0 to S2.
    x_old = np.array([[1, 0], [0, 1], [0, 0]], dtype=np.int8)
    x_new = np.array([[0, 0], [0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])
    return RtspInstance.create([1.0, 1.0], [1.0, 1.0, 1.0], costs, x_old, x_new)


class TestInitialState:
    def test_starts_at_x_old(self, inst):
        state = SystemState(inst)
        assert state.matches(inst.x_old)
        assert state.holds(0, 0) and not state.holds(2, 0)

    def test_free_space(self, inst):
        state = SystemState(inst)
        assert state.free_space(0) == 0.0
        assert state.free_space(2) == 1.0
        assert state.free_space(inst.dummy) == float("inf")

    def test_dummy_holds_everything(self, inst):
        state = SystemState(inst)
        assert state.holds(inst.dummy, 0) and state.holds(inst.dummy, 1)

    def test_custom_start_placement(self, inst):
        state = SystemState(inst, placement=inst.x_new)
        assert state.matches(inst.x_new)

    def test_overfull_start_rejected(self, inst):
        bad = np.ones((3, 2), dtype=np.int8)
        with pytest.raises(InvalidActionError):
            SystemState(inst, placement=bad)


class TestTransferSemantics:
    def test_valid_transfer(self, inst):
        state = SystemState(inst)
        t = Transfer(2, 0, 0)
        assert state.is_valid(t)
        state.apply(t)
        assert state.holds(2, 0)
        assert state.free_space(2) == 0.0

    def test_source_must_hold(self, inst):
        state = SystemState(inst)
        assert not state.is_valid(Transfer(2, 0, 1))
        assert "does not replicate" in state.explain_invalid(Transfer(2, 0, 1))

    def test_target_must_not_hold(self, inst):
        state = SystemState(inst)
        assert not state.is_valid(Transfer(0, 0, inst.dummy))

    def test_capacity_enforced(self, inst):
        state = SystemState(inst)
        # S0 is full (holds O0, capacity 1)
        assert not state.is_valid(Transfer(0, 1, 1))
        assert "lacks space" in state.explain_invalid(Transfer(0, 1, 1))

    def test_dummy_source_always_available(self, inst):
        state = SystemState(inst)
        assert state.is_valid(Transfer(2, 1, inst.dummy))

    def test_cannot_target_dummy(self, inst):
        state = SystemState(inst)
        assert not state.is_valid(Transfer(inst.dummy, 0, 0))

    def test_self_transfer_invalid(self, inst):
        state = SystemState(inst)
        assert not state.is_valid(Transfer(0, 0, 0))

    def test_apply_invalid_raises_with_context(self, inst):
        state = SystemState(inst)
        with pytest.raises(InvalidActionError) as err:
            state.apply(Transfer(2, 0, 1), position=5)
        assert err.value.position == 5


class TestDeleteSemantics:
    def test_valid_delete(self, inst):
        state = SystemState(inst)
        state.apply(Delete(0, 0))
        assert not state.holds(0, 0)
        assert state.free_space(0) == 1.0

    def test_absent_replica_invalid(self, inst):
        state = SystemState(inst)
        assert not state.is_valid(Delete(2, 0))

    def test_cannot_delete_from_dummy(self, inst):
        state = SystemState(inst)
        assert not state.is_valid(Delete(inst.dummy, 0))


class TestNearestQueries:
    def test_nearest_prefers_cheapest(self, inst):
        state = SystemState(inst)
        state.apply(Transfer(2, 1, 1))
        # O1 now at S1 (cost 1 from S0) and S2 (cost 2 from S0)
        assert state.nearest(0, 1) == 1

    def test_nearest_falls_back_to_dummy(self, inst):
        state = SystemState(inst)
        state.apply(Delete(0, 0))
        assert state.nearest(2, 0) == inst.dummy

    def test_nearest_excludes_self(self, inst):
        state = SystemState(inst)
        assert state.nearest(0, 0) == inst.dummy  # only S0 holds O0

    def test_nearest_exclude_argument(self, inst):
        state = SystemState(inst)
        assert state.nearest(2, 0, exclude=(0,)) == inst.dummy

    def test_nearest_pair(self, inst):
        state = SystemState(inst)
        state.apply(Transfer(2, 1, 1))
        first, second = state.nearest_pair(0, 1)
        assert (first, second) == (1, 2)

    def test_nearest_pair_degrades_to_dummy(self, inst):
        state = SystemState(inst)
        first, second = state.nearest_pair(2, 0)
        assert first == 0 and second == inst.dummy

    def test_nearest_cost(self, inst):
        state = SystemState(inst)
        assert state.nearest_cost(2, 0) == 2.0

    def test_tie_breaks_to_lowest_index(self, inst):
        state = SystemState(inst)
        state.apply(Transfer(2, 0, 0))  # O0 at S0 (cost 1) and S2 (cost 1) from S1
        assert state.nearest(1, 0) == 0


class TestUndoAndCopy:
    def test_undo_transfer(self, inst):
        state = SystemState(inst)
        t = Transfer(2, 0, 0)
        state.apply(t)
        state.undo(t)
        assert state.matches(inst.x_old)
        assert state.free_space(2) == 1.0

    def test_undo_delete(self, inst):
        state = SystemState(inst)
        d = Delete(0, 0)
        state.apply(d)
        state.undo(d)
        assert state.matches(inst.x_old)

    def test_undo_unapplied_raises(self, inst):
        state = SystemState(inst)
        with pytest.raises(InvalidActionError):
            state.undo(Transfer(2, 0, 0))  # replica absent
        with pytest.raises(InvalidActionError):
            state.undo(Delete(0, 0))  # replica still present

    def test_copy_is_independent(self, inst):
        state = SystemState(inst)
        dup = state.copy()
        state.apply(Delete(0, 0))
        assert dup.holds(0, 0)
        assert not state.holds(0, 0)

    def test_replicators_view(self, inst):
        state = SystemState(inst)
        assert state.replicators(0) == frozenset({0})
        assert state.num_replicas(0) == 1
