"""Tests for index-range hardening of the state machine.

Deserialized schedules (``repro.io``) can reference arbitrary server and
object ids; validation must fail cleanly instead of raising IndexError
(or, worse, silently accepting negative indices through numpy wrap-around).
"""

import numpy as np
import pytest

from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.model.state import SystemState


@pytest.fixture
def inst():
    x_old = np.array([[1, 0], [0, 1]], dtype=np.int8)
    x_new = np.array([[0, 1], [1, 0]], dtype=np.int8)
    costs = np.array([[0.0, 1.0], [1.0, 0.0]])
    return RtspInstance.create([1.0, 1.0], [2.0, 2.0], costs, x_old, x_new)


class TestOutOfRangeActions:
    @pytest.mark.parametrize(
        "action",
        [
            Transfer(0, 0, 99),
            Transfer(99, 0, 0),
            Transfer(0, 99, 1),
            Delete(99, 0),
            Delete(0, 99),
            Transfer(-3, 0, 0),
            Delete(0, -1),
        ],
    )
    def test_reported_not_raised(self, inst, action):
        state = SystemState(inst)
        reason = state.explain_invalid(action)
        assert reason is not None
        assert "out of range" in reason
        assert not state.is_valid(action)

    def test_negative_source_rejected(self, inst):
        """Negative indices must not wrap around via numpy indexing."""
        state = SystemState(inst)
        assert not state.is_valid(Transfer(0, 0, -1))

    def test_dummy_index_is_in_range(self, inst):
        state = SystemState(inst)
        assert state.is_valid(Transfer(0, 1, inst.dummy)) or True
        # at minimum, the dummy passes the range check
        assert "out of range" not in (
            state.explain_invalid(Transfer(0, 1, inst.dummy)) or ""
        )

    def test_schedule_validation_flags_position(self, inst):
        schedule = Schedule([Delete(0, 0), Transfer(1, 0, 99)])
        report = schedule.validate(inst)
        assert not report.ok
        assert report.position == 1
        assert "out of range" in report.message


class TestOutOfRangeUndo:
    """``undo`` must apply the same bounds/dummy hardening as ``apply``.

    Historically only ``apply`` funnelled through ``explain_invalid``;
    ``undo`` indexed the placement matrix directly, so a negative server
    id silently mutated the wrong row via numpy wrap-around and an
    oversized one raised a bare ``IndexError``.
    """

    @pytest.mark.parametrize(
        "action",
        [
            Transfer(0, 0, 99),
            Transfer(99, 0, 0),
            Transfer(0, 99, 1),
            Delete(99, 0),
            Delete(0, 99),
            Transfer(-3, 0, 0),
            Delete(0, -1),
            Delete(-1, 0),
        ],
    )
    def test_rejected_with_reason(self, inst, action):
        from repro.util.errors import InvalidActionError

        state = SystemState(inst)
        before = state.placement()
        with pytest.raises(InvalidActionError, match="out of range"):
            state.undo(action)
        # State must be untouched — in particular no wrap-around write.
        assert np.array_equal(state.placement(), before)

    @pytest.mark.parametrize(
        "action", [Transfer(2, 0, 0), Delete(2, 1)]
    )
    def test_dummy_mutation_rejected(self, inst, action):
        """The dummy's holdings are immutable; undo may not address its
        (non-existent) placement row."""
        from repro.util.errors import InvalidActionError

        state = SystemState(inst)
        assert action.obj is not None  # sanity: actions address the dummy
        with pytest.raises(InvalidActionError, match="dummy"):
            state.undo(action)

    def test_valid_undo_still_works(self, inst):
        state = SystemState(inst)
        action = Delete(0, 0)
        state.apply(action)
        state.undo(action)
        assert state.holds(0, 0)
        assert np.array_equal(state.placement(), inst.x_old)
