"""Tests for the BRITE-like Barabási–Albert generator."""

import numpy as np
import pytest

from repro.network.brite import (
    barabasi_albert_topology,
    brite_paper_topology,
    degree_histogram,
)
from repro.util.errors import ConfigurationError


class TestBarabasiAlbert:
    def test_m1_is_tree(self):
        t = barabasi_albert_topology(30, m=1, rng=0)
        assert t.is_tree()

    def test_m2_edge_count(self):
        t = barabasi_albert_topology(30, m=2, rng=0)
        # seed clique K3 has 3 links, then 27 nodes x 2 links
        assert t.num_links == 3 + 27 * 2
        assert t.is_connected()

    def test_costs_within_bounds(self):
        t = barabasi_albert_topology(40, cost_low=1, cost_high=10, rng=1)
        weights = [w for _, _, w in t.edges()]
        assert min(weights) >= 1 and max(weights) <= 10

    def test_integer_costs_by_default(self):
        t = barabasi_albert_topology(40, rng=2)
        assert all(float(w).is_integer() for _, _, w in t.edges())

    def test_continuous_costs(self):
        t = barabasi_albert_topology(60, integer_costs=False, rng=3)
        assert any(not float(w).is_integer() for _, _, w in t.edges())

    def test_deterministic_under_seed(self):
        a = sorted(barabasi_albert_topology(25, rng=7).edges())
        b = sorted(barabasi_albert_topology(25, rng=7).edges())
        assert a == b

    def test_preferential_attachment_creates_hubs(self):
        # BA trees have heavier-tailed degrees than uniform random trees:
        # with 400 nodes, some hub should have a clearly large degree.
        t = barabasi_albert_topology(400, rng=11)
        hist = degree_histogram(t)
        assert len(hist) - 1 >= 8  # max degree at least 8

    @pytest.mark.parametrize("bad", [dict(n=1, m=1), dict(n=3, m=0), dict(n=2, m=2)])
    def test_invalid_parameters(self, bad):
        with pytest.raises(ConfigurationError):
            barabasi_albert_topology(**bad)

    def test_bad_cost_range(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_topology(5, cost_low=5, cost_high=1)


class TestPaperTopology:
    def test_defaults_match_paper(self):
        t = brite_paper_topology(rng=0)
        assert t.num_nodes == 50
        assert t.is_tree()
        weights = [w for _, _, w in t.edges()]
        assert min(weights) >= 1 and max(weights) <= 10
        assert all(float(w).is_integer() for w in weights)

    def test_custom_size(self):
        assert brite_paper_topology(n=10, rng=0).num_nodes == 10
