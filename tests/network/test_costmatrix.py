"""Tests for cost-matrix construction and the dummy-server extension."""

import numpy as np
import pytest

from repro.network.costmatrix import (
    cost_matrix_from_topology,
    dummy_link_cost,
    extend_with_dummy,
    strip_dummy,
    uniform_cost_matrix,
)
from repro.network.topology import Topology
from repro.util.errors import ConfigurationError


class TestCostMatrixFromTopology:
    def test_shortest_path_costs(self):
        t = Topology(3, [(0, 1, 2.0), (1, 2, 3.0)])
        mat = cost_matrix_from_topology(t)
        assert mat[0, 2] == 5.0

    def test_disconnected_rejected(self):
        t = Topology(3, [(0, 1, 1.0)])
        with pytest.raises(ConfigurationError):
            cost_matrix_from_topology(t)


class TestUniformCostMatrix:
    def test_structure(self):
        mat = uniform_cost_matrix(3, cost=4.0)
        assert mat[0, 1] == 4.0
        assert (np.diagonal(mat) == 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_cost_matrix(0)


class TestDummyLinkCost:
    def test_formula(self):
        costs = np.array([[0.0, 3.0], [3.0, 0.0]])
        assert dummy_link_cost(costs, a=1.0) == 4.0
        assert dummy_link_cost(costs, a=2.0) == 8.0

    def test_sub_one_constant_allowed(self):
        costs = np.array([[0.0, 3.0], [3.0, 0.0]])
        assert dummy_link_cost(costs, a=0.5) == 2.0

    def test_nonpositive_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            dummy_link_cost(np.zeros((2, 2)), a=0.0)


class TestExtendStrip:
    def test_extend_shape_and_values(self):
        costs = uniform_cost_matrix(3, cost=2.0)
        ext = extend_with_dummy(costs, a=1.0)
        assert ext.shape == (4, 4)
        assert (ext[3, :3] == 3.0).all()
        assert (ext[:3, 3] == 3.0).all()
        assert ext[3, 3] == 0.0

    def test_dummy_is_strictly_most_expensive(self):
        costs = uniform_cost_matrix(4, cost=7.0)
        ext = extend_with_dummy(costs)
        assert ext[4, 0] > costs.max()

    def test_strip_roundtrip(self):
        costs = uniform_cost_matrix(3, cost=2.0)
        ext = extend_with_dummy(costs, a=1.5)
        plain, dummy = strip_dummy(ext)
        assert np.allclose(plain, costs)
        assert dummy == 4.5

    def test_extend_rejects_asymmetric(self):
        with pytest.raises(ConfigurationError):
            extend_with_dummy(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_extend_rejects_nonzero_diagonal(self):
        with pytest.raises(ConfigurationError):
            extend_with_dummy(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_strip_rejects_non_uniform_last_row(self):
        bad = np.array(
            [[0.0, 1.0, 5.0], [1.0, 0.0, 6.0], [5.0, 6.0, 0.0]]
        )
        with pytest.raises(ConfigurationError):
            strip_dummy(bad)

    def test_strip_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            strip_dummy(np.zeros((1, 1)))
