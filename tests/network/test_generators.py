"""Tests for the reference topology generators."""

import pytest

from repro.network.generators import (
    complete_topology,
    erdos_renyi_topology,
    grid_topology,
    line_topology,
    random_tree_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)
from repro.util.errors import ConfigurationError


class TestStar:
    def test_structure(self):
        t = star_topology(6, rng=0)
        assert t.num_links == 5
        assert t.degree(0) == 5
        assert all(t.degree(v) == 1 for v in range(1, 6))

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            star_topology(1)


class TestLineAndRing:
    def test_line(self):
        t = line_topology(5, rng=0)
        assert t.num_links == 4
        assert t.degree(0) == 1 and t.degree(4) == 1
        assert t.degree(2) == 2

    def test_ring(self):
        t = ring_topology(5, rng=0)
        assert t.num_links == 5
        assert all(t.degree(v) == 2 for v in range(5))

    def test_ring_too_small(self):
        with pytest.raises(ConfigurationError):
            ring_topology(2)


class TestGrid:
    def test_structure(self):
        t = grid_topology(3, 4, rng=0)
        assert t.num_nodes == 12
        # 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8
        assert t.num_links == 17
        assert t.is_connected()

    def test_corner_degree(self):
        t = grid_topology(3, 3, rng=0)
        assert t.degree(0) == 2  # corner
        assert t.degree(4) == 4  # centre

    def test_single_row(self):
        t = grid_topology(1, 5, rng=0)
        assert t.num_links == 4


class TestComplete:
    def test_structure(self):
        t = complete_topology(5, rng=0)
        assert t.num_links == 10
        assert all(t.degree(v) == 4 for v in range(5))


class TestRandomTree:
    def test_is_tree(self):
        t = random_tree_topology(40, rng=0)
        assert t.is_tree()

    def test_deterministic(self):
        a = sorted(random_tree_topology(20, rng=5).edges())
        b = sorted(random_tree_topology(20, rng=5).edges())
        assert a == b


class TestErdosRenyi:
    def test_connected_by_default(self):
        t = erdos_renyi_topology(30, p=0.02, rng=0)
        assert t.is_connected()

    def test_unconnected_allowed(self):
        t = erdos_renyi_topology(30, p=0.0, connect=False, rng=0)
        assert t.num_links == 0

    def test_p_one_is_complete(self):
        t = erdos_renyi_topology(6, p=1.0, rng=0)
        assert t.num_links == 15

    def test_bad_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_topology(5, p=1.5)


class TestWaxman:
    def test_connected_by_default(self):
        t = waxman_topology(25, rng=0)
        assert t.is_connected()

    def test_higher_alpha_denser(self):
        sparse = waxman_topology(40, alpha=0.1, beta=0.1, connect=False, rng=3)
        dense = waxman_topology(40, alpha=0.9, beta=0.9, connect=False, rng=3)
        assert dense.num_links > sparse.num_links

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            waxman_topology(5, alpha=0.0)
