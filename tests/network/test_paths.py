"""Tests for shortest-path routines."""

import networkx as nx
import numpy as np
import pytest

from repro.network.generators import waxman_topology
from repro.network.paths import all_pairs_shortest_paths, dijkstra, floyd_warshall
from repro.network.topology import Topology
from repro.util.errors import ConfigurationError


@pytest.fixture
def diamond():
    # 0-1 (1), 0-2 (4), 1-2 (1), 2-3 (1), 1-3 (5)
    return Topology(
        4, [(0, 1, 1.0), (0, 2, 4.0), (1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0)]
    )


class TestDijkstra:
    def test_shortest_route_wins(self, diamond):
        dist = dijkstra(diamond, 0)
        assert dist[0] == 0
        assert dist[1] == 1
        assert dist[2] == 2  # via node 1, not the direct 4-cost link
        assert dist[3] == 3

    def test_unreachable_is_inf(self):
        t = Topology(3, [(0, 1, 1.0)])
        assert np.isinf(dijkstra(t, 0)[2])

    def test_bad_source(self, diamond):
        with pytest.raises(ConfigurationError):
            dijkstra(diamond, 9)


class TestFloydWarshall:
    def test_matches_dijkstra(self, diamond):
        fw = floyd_warshall(diamond.adjacency_matrix())
        for s in range(4):
            assert np.allclose(fw[s], dijkstra(diamond, s))

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            floyd_warshall(np.zeros((2, 3)))


class TestAllPairs:
    def test_methods_agree_on_random_graph(self):
        topo = waxman_topology(20, alpha=0.7, beta=0.5, rng=4)
        a = all_pairs_shortest_paths(topo, method="dijkstra")
        b = all_pairs_shortest_paths(topo, method="floyd-warshall")
        assert np.allclose(a, b)

    def test_agrees_with_networkx(self):
        topo = waxman_topology(15, alpha=0.7, beta=0.5, rng=5)
        ours = all_pairs_shortest_paths(topo)
        g = topo.to_networkx()
        for s, targets in nx.all_pairs_dijkstra_path_length(g, weight="weight"):
            for t, d in targets.items():
                assert ours[s, t] == pytest.approx(d)

    def test_symmetry_and_zero_diagonal(self):
        topo = waxman_topology(12, rng=6)
        mat = all_pairs_shortest_paths(topo)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diagonal(mat), 0.0)

    def test_auto_method_selection(self, diamond):
        assert all_pairs_shortest_paths(diamond, method=None).shape == (4, 4)

    def test_unknown_method(self, diamond):
        with pytest.raises(ConfigurationError):
            all_pairs_shortest_paths(diamond, method="bellman")

    def test_triangle_inequality(self):
        topo = waxman_topology(15, rng=8)
        mat = all_pairs_shortest_paths(topo)
        n = topo.num_nodes
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert mat[i, j] <= mat[i, k] + mat[k, j] + 1e-9
