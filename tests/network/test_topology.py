"""Tests for repro.network.topology."""

import networkx as nx
import numpy as np
import pytest

from repro.network.topology import Topology
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_basic(self):
        t = Topology(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert t.num_nodes == 3
        assert t.num_links == 2

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(0)

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(2, [(0, 0, 1.0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(2, [(0, 2, 1.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(2, [(0, 1, -1.0)])

    def test_parallel_links_keep_cheapest(self):
        t = Topology(2, [(0, 1, 5.0), (0, 1, 2.0), (1, 0, 7.0)])
        assert t.link_weight(0, 1) == 2.0
        assert t.num_links == 1


class TestQueries:
    def test_neighbors_symmetric(self):
        t = Topology(3, [(0, 1, 2.0)])
        assert t.neighbors(0) == {1: 2.0}
        assert t.neighbors(1) == {0: 2.0}

    def test_degree(self):
        t = Topology(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
        assert t.degree(0) == 3
        assert t.degree(1) == 1

    def test_has_link(self):
        t = Topology(3, [(0, 1, 1.0)])
        assert t.has_link(0, 1) and t.has_link(1, 0)
        assert not t.has_link(0, 2)

    def test_edges_iterates_once(self):
        t = Topology(3, [(0, 1, 1.0), (1, 2, 2.0)])
        edges = sorted(t.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0)]


class TestConnectivity:
    def test_connected(self):
        assert Topology(3, [(0, 1, 1.0), (1, 2, 1.0)]).is_connected()

    def test_disconnected(self):
        assert not Topology(3, [(0, 1, 1.0)]).is_connected()

    def test_single_node_connected(self):
        assert Topology(1).is_connected()

    def test_is_tree(self):
        assert Topology(3, [(0, 1, 1.0), (1, 2, 1.0)]).is_tree()
        assert not Topology(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).is_tree()


class TestConversions:
    def test_adjacency_matrix(self):
        t = Topology(3, [(0, 1, 2.0)])
        mat = t.adjacency_matrix()
        assert mat[0, 1] == 2.0 and mat[1, 0] == 2.0
        assert np.isinf(mat[0, 2])
        assert (np.diagonal(mat) == 0).all()

    def test_networkx_roundtrip(self):
        t = Topology(4, [(0, 1, 1.5), (1, 2, 2.5), (2, 3, 3.5)])
        t2 = Topology.from_networkx(t.to_networkx())
        assert sorted(t.edges()) == sorted(t2.edges())

    def test_from_networkx_relabels(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=4.0)
        t = Topology.from_networkx(g)
        assert t.num_nodes == 2
        assert t.link_weight(0, 1) == 4.0

    def test_from_networkx_default_weight(self):
        g = nx.path_graph(3)
        t = Topology.from_networkx(g)
        assert t.link_weight(0, 1) == 1.0
