"""Tests for the 0/1 Knapsack DP solver."""

import itertools

import numpy as np
import pytest

from repro.npc.knapsack import KnapsackInstance, solve_knapsack
from repro.util.errors import ConfigurationError


def brute_force(instance):
    best = 0
    n = instance.num_objects
    for mask in itertools.product((0, 1), repeat=n):
        weight = sum(s for s, take in zip(instance.sizes, mask) if take)
        if weight <= instance.capacity:
            best = max(
                best, sum(b for b, take in zip(instance.benefits, mask) if take)
            )
    return best


class TestInstanceValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            KnapsackInstance.create([1, 2], [1], 3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            KnapsackInstance.create([0], [1], 3)
        with pytest.raises(ConfigurationError):
            KnapsackInstance.create([1], [0], 3)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            KnapsackInstance.create([1], [1], -1)


class TestSolver:
    def test_textbook_instance(self):
        inst = KnapsackInstance.create([60, 100, 120], [10, 20, 30], 50)
        sol = solve_knapsack(inst)
        assert sol.value == 220
        assert set(sol.chosen) == {1, 2}
        assert sol.weight == 50

    def test_nothing_fits(self):
        inst = KnapsackInstance.create([5, 5], [10, 10], 3)
        sol = solve_knapsack(inst)
        assert sol.value == 0 and sol.chosen == ()

    def test_everything_fits(self):
        inst = KnapsackInstance.create([1, 2, 3], [1, 1, 1], 10)
        sol = solve_knapsack(inst)
        assert sol.value == 6
        assert set(sol.chosen) == {0, 1, 2}

    def test_zero_capacity(self):
        inst = KnapsackInstance.create([4], [2], 0)
        assert solve_knapsack(inst).value == 0

    def test_chosen_subset_is_consistent(self):
        inst = KnapsackInstance.create([7, 2, 9, 4], [3, 1, 4, 2], 6)
        sol = solve_knapsack(inst)
        assert sum(inst.benefits[i] for i in sol.chosen) == sol.value
        assert sum(inst.sizes[i] for i in sol.chosen) == sol.weight
        assert sol.weight <= inst.capacity

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        inst = KnapsackInstance.create(
            benefits=rng.integers(1, 20, size=n).tolist(),
            sizes=rng.integers(1, 10, size=n).tolist(),
            capacity=int(rng.integers(0, 25)),
        )
        assert solve_knapsack(inst).value == brute_force(inst)
