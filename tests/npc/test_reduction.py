"""Tests for the Knapsack→RTSP reduction (paper §3.4)."""

import itertools

import numpy as np
import pytest

from repro.core import solve_exact
from repro.npc.knapsack import KnapsackInstance, solve_knapsack
from repro.npc.reduction import (
    canonical_cost,
    canonical_schedule,
    decision_threshold,
    decode_schedule,
    reduce_knapsack_to_rtsp,
)
from repro.util.errors import ConfigurationError


@pytest.fixture
def knap():
    return KnapsackInstance.create(benefits=[3, 2, 4], sizes=[2, 3, 4], capacity=5)


@pytest.fixture
def reduction(knap):
    return reduce_knapsack_to_rtsp(knap)


class TestConstruction:
    def test_dimensions(self, knap, reduction):
        rtsp = reduction.rtsp
        assert rtsp.num_servers == knap.num_objects + 3
        assert rtsp.num_objects == knap.num_objects + 1

    def test_big_object_size(self, knap, reduction):
        assert reduction.rtsp.sizes[reduction.big_object] == sum(knap.sizes)

    def test_hub_capacity(self, knap, reduction):
        assert (
            reduction.rtsp.capacities[reduction.hub]
            == knap.capacity + sum(knap.sizes)
        )

    def test_placements(self, knap, reduction):
        rtsp = reduction.rtsp
        n = knap.num_objects
        for i in range(n):
            assert rtsp.x_old[i, i] == 1 and rtsp.x_new[i, i] == 1
        assert rtsp.x_old[reduction.hub, reduction.big_object] == 1
        assert rtsp.x_new[reduction.hub, :n].sum() == n
        assert rtsp.x_old[reduction.warehouse, :n].sum() == n
        assert rtsp.x_new[reduction.warehouse, reduction.big_object] == 1

    def test_link_costs(self, knap, reduction):
        rtsp = reduction.rtsp
        assert rtsp.costs[reduction.hub, reduction.warehouse] == 1.0
        product = reduction.size_product
        for i in range(knap.num_objects):
            expected = knap.benefits[i] * product // knap.sizes[i]
            assert rtsp.costs[i, reduction.hub] == expected

    def test_empty_knapsack_rejected(self):
        with pytest.raises(ConfigurationError):
            reduce_knapsack_to_rtsp(KnapsackInstance.create([], [], 1))


class TestCanonicalSchedule:
    def test_valid_for_feasible_subsets(self, knap, reduction):
        for subset in ([], [0], [1], [0, 1], [2]):
            if sum(knap.sizes[i] for i in subset) <= knap.capacity:
                schedule = canonical_schedule(reduction, subset)
                assert schedule.validate(reduction.rtsp).ok, subset

    def test_cost_matches_closed_form(self, knap, reduction):
        for subset in ([], [0], [0, 1], [2]):
            schedule = canonical_schedule(reduction, subset)
            assert schedule.cost(reduction.rtsp) == pytest.approx(
                canonical_cost(reduction, subset)
            )

    def test_infeasible_subset_rejected(self, reduction):
        with pytest.raises(ConfigurationError):
            canonical_schedule(reduction, [0, 1, 2])  # weight 9 > 5

    def test_out_of_range_rejected(self, reduction):
        with pytest.raises(ConfigurationError):
            canonical_schedule(reduction, [99])

    def test_better_subsets_cost_less(self, knap, reduction):
        """Higher knapsack value <=> lower canonical cost."""
        feasible = [
            s
            for r in range(knap.num_objects + 1)
            for s in itertools.combinations(range(knap.num_objects), r)
            if sum(knap.sizes[i] for i in s) <= knap.capacity
        ]
        by_value = sorted(
            feasible, key=lambda s: sum(knap.benefits[i] for i in s)
        )
        costs = [canonical_cost(reduction, s) for s in by_value]
        assert costs == sorted(costs, reverse=True)


class TestRoundTrip:
    def test_exact_optimum_equals_dp_optimum(self, knap, reduction):
        dp = solve_knapsack(knap)
        seed = canonical_schedule(reduction, dp.chosen)
        result = solve_exact(
            reduction.rtsp, initial=seed, allow_staging=False
        )
        assert result.complete
        assert result.cost == pytest.approx(canonical_cost(reduction, dp.chosen))
        subset, value = decode_schedule(reduction, result.schedule)
        assert value == dp.value

    @pytest.mark.parametrize("seed", range(4))
    def test_random_round_trips(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 4))
        knap = KnapsackInstance.create(
            benefits=rng.integers(1, 6, size=n).tolist(),
            sizes=rng.integers(2, 5, size=n).tolist(),
            capacity=int(rng.integers(2, 8)),
        )
        dp = solve_knapsack(knap)
        reduction = reduce_knapsack_to_rtsp(knap)
        seed_schedule = canonical_schedule(reduction, dp.chosen)
        result = solve_exact(
            reduction.rtsp, initial=seed_schedule, allow_staging=False
        )
        assert result.complete
        assert result.cost == pytest.approx(
            canonical_cost(reduction, dp.chosen)
        )

    def test_decision_threshold_separates(self, knap, reduction):
        """Cost <= threshold(K) is achievable iff knapsack value >= K."""
        dp = solve_knapsack(knap)
        seed = canonical_schedule(reduction, dp.chosen)
        result = solve_exact(reduction.rtsp, initial=seed, allow_staging=False)
        assert result.cost <= decision_threshold(knap, dp.value)
        assert result.cost > decision_threshold(knap, dp.value + 1)
