"""Regression: §3.4 reduction instances satisfy the strict validator.

The Knapsack→RTSP construction packs the hub server to the byte — its
spare space equals the knapsack capacity exactly — so an off-by-one in
either the reduction's capacities or the validator's prefix-capacity
accounting would surface here first.
"""

from itertools import combinations

import pytest

from repro.exact import check_invariants, solve_optimal
from repro.npc.knapsack import KnapsackInstance, solve_knapsack
from repro.npc.reduction import (
    canonical_cost,
    canonical_schedule,
    reduce_knapsack_to_rtsp,
)

CASES = [
    ((3, 1), (2, 1), 2),
    ((1, 2, 3), (1, 2, 3), 3),
    ((4, 2, 1), (3, 1, 2), 4),
    ((2, 2), (1, 3), 1),
    ((5,), (2,), 2),
    ((1, 1, 1), (2, 2, 2), 6),
]


def feasible_subsets(knap):
    for r in range(knap.num_objects + 1):
        for subset in combinations(range(knap.num_objects), r):
            if sum(knap.sizes[i] for i in subset) <= knap.capacity:
                yield subset


@pytest.mark.parametrize("benefits,sizes,capacity", CASES)
def test_canonical_schedules_pass_strict_validator(benefits, sizes, capacity):
    knap = KnapsackInstance.create(list(benefits), list(sizes), capacity)
    reduction = reduce_knapsack_to_rtsp(knap)
    for subset in feasible_subsets(knap):
        schedule = canonical_schedule(reduction, subset)
        report = check_invariants(reduction.rtsp, schedule)
        assert report.ok, f"subset {subset}: {report.summary()}"
        assert report.cost == pytest.approx(
            canonical_cost(reduction, subset)
        ), f"subset {subset}: closed-form cost disagrees with the oracle"


@pytest.mark.parametrize("benefits,sizes,capacity", CASES[:3])
def test_exact_optimum_encodes_an_optimal_knapsack(benefits, sizes, capacity):
    knap = KnapsackInstance.create(list(benefits), list(sizes), capacity)
    reduction = reduce_knapsack_to_rtsp(knap)
    best = min(
        canonical_cost(reduction, s) for s in feasible_subsets(knap)
    )
    result = solve_optimal(reduction.rtsp)
    assert result.proved_optimal
    # The optimum can only improve on canonical-form schedules ...
    assert result.cost <= best + 1e-9
    # ... and the solver's schedule must itself survive the oracle.
    assert check_invariants(reduction.rtsp, result.schedule).ok
    # Sanity: the DP solver agrees a max-benefit subset exists.
    assert solve_knapsack(knap).value >= 0
