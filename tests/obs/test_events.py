"""Tests for the rtsp-events/1 event stream and the flight recorder."""

import json

import pytest

from repro.obs.events import (
    EVENTS_FORMAT,
    Event,
    EventStream,
    FlightRecorder,
    flight_recorded,
    load_events,
    render_event,
    validate_event_file,
    validate_event_lines,
)
from repro.obs.context import current_events, use_events
from repro.util.errors import ConfigurationError


class TestEventStream:
    def test_emit_assigns_sequential_seqs(self):
        stream = EventStream()
        a = stream.emit("a")
        b = stream.emit("b", n=1)
        assert (a.seq, b.seq) == (0, 1)
        assert b.attrs == {"n": 1}

    def test_logical_record_excludes_wall(self):
        stream = EventStream()
        stream.emit("x")
        record = stream.events[0].logical_record()
        assert "wall" not in record
        assert "wall" in stream.events[0].record()

    def test_on_event_hook_fires_live(self):
        seen = []
        stream = EventStream(on_event=seen.append)
        stream.emit("one")
        stream.emit("two")
        assert [e.name for e in seen] == ["one", "two"]

    def test_adopt_rebases_seqs_in_order(self):
        parent = EventStream()
        parent.emit("before")
        fragment = EventStream()
        fragment.emit("frag.a")
        fragment.emit("frag.b")
        parent.adopt(fragment.events)
        assert [e.name for e in parent.events] == [
            "before", "frag.a", "frag.b",
        ]
        assert [e.seq for e in parent.events] == [0, 1, 2]

    def test_adopt_feeds_hook_and_recorder(self):
        seen = []
        recorder = FlightRecorder(capacity=8)
        parent = EventStream(on_event=seen.append, recorder=recorder)
        fragment = EventStream()
        fragment.emit("frag")
        parent.adopt(fragment.events)
        assert [e.name for e in seen] == ["frag"]
        assert [e.name for e in recorder.events] == ["frag"]

    def test_merged_stream_independent_of_fragmentation(self):
        """One stream vs two adopted fragments: same logical lines."""
        whole = EventStream()
        for name in ("a", "b", "c", "d"):
            whole.emit(name)
        merged = EventStream()
        first, second = EventStream(), EventStream()
        first.emit("a")
        first.emit("b")
        second.emit("c")
        second.emit("d")
        merged.adopt(first.events)
        merged.adopt(second.events)
        assert merged.logical_lines() == whole.logical_lines()

    def test_roundtrip_through_jsonl(self, tmp_path):
        stream = EventStream(meta={"run": "t"})
        stream.emit("x", k=1)
        stream.emit("y")
        path = tmp_path / "events.jsonl"
        stream.write_jsonl(str(path))
        assert validate_event_file(str(path)) == []
        header, events = load_events(str(path))
        assert header["format"] == EVENTS_FORMAT
        assert header["meta"] == {"run": "t"}
        assert [e.name for e in events] == ["x", "y"]
        assert events[0].attrs == {"k": 1}

    def test_render_event_one_line(self):
        line = render_event(Event(seq=3, name="shard.part", attrs={"part": 1}))
        assert "shard.part" in line and "part=1" in line and "\n" not in line


class TestValidation:
    def _lines(self, stream):
        return stream.to_lines()

    def test_accepts_own_output(self):
        stream = EventStream()
        stream.emit("a")
        assert validate_event_lines(stream.to_lines()) == []

    def test_rejects_empty(self):
        assert validate_event_lines([]) != []

    def test_rejects_wrong_format(self):
        assert any(
            "format" in p
            for p in validate_event_lines(['{"format": "bogus/9", "events": 0}'])
        )

    def test_rejects_unparseable_json(self):
        header = json.dumps({"format": EVENTS_FORMAT, "events": 1})
        assert validate_event_lines([header, "{not json"]) != []

    def test_rejects_count_mismatch(self):
        header = json.dumps({"format": EVENTS_FORMAT, "events": 2})
        assert any(
            "declares" in p for p in validate_event_lines([header])
        )

    def test_rejects_non_monotone_seq(self):
        header = json.dumps({"format": EVENTS_FORMAT, "events": 2})
        e0 = json.dumps({"type": "event", "seq": 1, "name": "a", "attrs": {}})
        e1 = json.dumps({"type": "event", "seq": 0, "name": "b", "attrs": {}})
        assert validate_event_lines([header, e0, e1]) != []

    def test_rejects_bad_attrs_type(self):
        header = json.dumps({"format": EVENTS_FORMAT, "events": 1})
        bad = json.dumps(
            {"type": "event", "seq": 0, "name": "a", "attrs": [1]}
        )
        assert validate_event_lines([header, bad]) != []

    def test_load_invalid_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "bogus/9"}\n')
        with pytest.raises(ConfigurationError):
            load_events(str(path))


class TestFlightRecorder:
    def test_ring_keeps_last_capacity_events(self):
        recorder = FlightRecorder(capacity=3)
        stream = EventStream(recorder=recorder)
        for i in range(10):
            stream.emit("tick", i=i)
        assert len(recorder) == 3
        assert recorder.dropped == 7
        assert [e.attrs["i"] for e in recorder.events] == [7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)

    def test_dump_is_valid_events_file(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        stream = EventStream(recorder=recorder)
        for i in range(6):
            stream.emit("tick", i=i)
        path = tmp_path / "flight.jsonl"
        recorder.dump(str(path), reason="test")
        assert validate_event_file(str(path)) == []
        header, events = load_events(str(path))
        assert header["meta"]["flight_recorder"] is True
        assert header["meta"]["dropped"] == 2
        assert header["meta"]["reason"] == "test"
        assert [e.attrs["i"] for e in events] == [2, 3, 4, 5]

    def test_dump_without_destination_raises(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=2).dump()

    def test_note_records_synthetic_event(self):
        recorder = FlightRecorder(capacity=2)
        recorder.note("crash", code=1)
        assert [e.name for e in recorder.events] == ["crash"]


class TestFlightRecorded:
    def test_installs_active_stream(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with flight_recorded(str(path)) as stream:
            assert current_events() is stream
        assert current_events() is None
        assert not path.exists()  # clean exit writes nothing

    def test_dumps_on_exception(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with pytest.raises(RuntimeError):
            with flight_recorded(str(path)) as stream:
                stream.emit("step", n=1)
                raise RuntimeError("boom")
        assert validate_event_file(str(path)) == []
        header, events = load_events(str(path))
        assert "exception: RuntimeError" in header["meta"]["reason"]
        assert [e.name for e in events] == ["step", "exception"]
        assert events[-1].attrs["error"] == "RuntimeError"


class TestContext:
    def test_use_events_scoped(self):
        stream = EventStream()
        assert current_events() is None
        with use_events(stream):
            assert current_events() is stream
        assert current_events() is None
