"""Round-trip tests for the Prometheus and OTLP-style exporters."""

import json

import pytest

from repro.obs.export import (
    metrics_to_otlp,
    otlp_to_snapshot,
    parse_prometheus_text,
    prometheus_text,
    sanitize_metric_name,
    spans_to_otlp,
    write_otlp,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.util.errors import ConfigurationError


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("builder.transfers").inc(41)
    registry.counter("shard.parts_planned").inc(3)
    registry.gauge("plan.cost_gap").set(0.25)
    registry.gauge("plan.lpt_imbalance").set(1.5)
    hist = registry.histogram("shard.plan.seconds")
    for value in (0.5, 0.5, 3.0, 100.0):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("a.b.c") == "a_b_c"

    def test_prefix_prepended(self):
        assert sanitize_metric_name("a.b", "rtsp") == "rtsp_a_b"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("9lives")[0] == "_"

    def test_illegal_chars_replaced(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"


class TestPrometheus:
    def test_counters_get_total_suffix(self):
        text = prometheus_text(populated_registry().snapshot())
        assert "# TYPE rtsp_builder_transfers_total counter" in text
        assert "rtsp_builder_transfers_total 41" in text

    def test_gauges_verbatim_with_updates_companion(self):
        text = prometheus_text(populated_registry().snapshot())
        assert "rtsp_plan_cost_gap 0.25" in text
        assert "rtsp_plan_cost_gap_updates_total 1" in text

    def test_histogram_buckets_cumulative(self):
        text = prometheus_text(populated_registry().snapshot(), prefix="")
        lines = [
            line for line in text.splitlines()
            if line.startswith("shard_plan_seconds_bucket")
        ]
        # le values ascend and counts are cumulative, ending at +Inf.
        assert lines[-1] == 'shard_plan_seconds_bucket{le="+Inf"} 4'
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert "shard_plan_seconds_count 4" in text
        assert "shard_plan_seconds_sum 104" in text

    def test_deterministic_output(self):
        a = prometheus_text(populated_registry().snapshot())
        b = prometheus_text(populated_registry().snapshot())
        assert a == b

    def test_round_trip(self):
        """Everything survives except the (lossy) name sanitization."""
        snapshot = populated_registry().snapshot()
        parsed = parse_prometheus_text(prometheus_text(snapshot, prefix=""))
        assert parsed["counters"] == {
            sanitize_metric_name(name): float(value)
            for name, value in snapshot["counters"].items()
        }
        assert parsed["gauges"] == {
            sanitize_metric_name(name): rec
            for name, rec in snapshot["gauges"].items()
        }
        for name, rec in snapshot["histograms"].items():
            back = parsed["histograms"][sanitize_metric_name(name)]
            assert back["buckets"] == rec["buckets"]
            assert back["count"] == rec["count"]
            assert back["total"] == rec["total"]

    def test_rejects_wrong_format(self):
        with pytest.raises(ConfigurationError):
            prometheus_text({"format": "bogus/1"})

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_prometheus_text("!!! not exposition")

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(populated_registry().snapshot(), str(path))
        assert "rtsp_builder_transfers_total" in path.read_text()


class TestOtlpMetrics:
    def test_round_trip_exact(self):
        snapshot = populated_registry().snapshot()
        assert otlp_to_snapshot(metrics_to_otlp(snapshot)) == snapshot

    def test_counters_are_monotonic_sums(self):
        doc = metrics_to_otlp(populated_registry().snapshot())
        metrics = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        sums = {m["name"]: m["sum"] for m in metrics if "sum" in m}
        assert sums["builder.transfers"]["isMonotonic"] is True
        point = sums["builder.transfers"]["dataPoints"][0]
        assert point["asDouble"] == 41.0
        assert point["timeUnixNano"] == "0"  # logical time, not invented

    def test_resource_attributes_carried(self):
        doc = metrics_to_otlp(
            populated_registry().snapshot(), resource={"run": "x"}
        )
        attrs = doc["resourceMetrics"][0]["resource"]["attributes"]
        assert {"key": "run", "value": {"stringValue": "x"}} in attrs

    def test_rejects_wrong_format(self):
        with pytest.raises(ConfigurationError):
            metrics_to_otlp({"format": "bogus/1"})


class TestOtlpSpans:
    def make_trace(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("plan_sharded", parts=2):
            with tracer.span("shard.plan", part=0):
                pass
        return tracer

    def test_parent_links_survive(self):
        tracer = self.make_trace()
        doc = spans_to_otlp(tracer.spans)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        by_name = {s["name"]: s for s in spans}
        child, root = by_name["shard.plan"], by_name["plan_sharded"]
        assert child["parentSpanId"] == root["spanId"]
        assert root["parentSpanId"] == ""

    def test_logical_timestamps_deterministic(self):
        """Stamps come from seq numbers; only wall_ms varies across runs."""

        def normalized(doc):
            spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
            for span in spans:
                assert int(span["endTimeUnixNano"]) > int(
                    span["startTimeUnixNano"]
                )
                span["attributes"] = [
                    attr for attr in span["attributes"]
                    if attr["key"] != "wall_ms"
                ]
            return json.dumps(doc, sort_keys=True)

        assert normalized(spans_to_otlp(self.make_trace().spans)) == (
            normalized(spans_to_otlp(self.make_trace().spans))
        )

    def test_wall_and_counters_ride_as_attributes(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.count("hits", 3)
        doc = spans_to_otlp(tracer.spans)
        span = doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        keys = {attr["key"] for attr in span["attributes"]}
        assert "wall_ms" in keys and "counter.hits" in keys


class TestWriteOtlp:
    def test_bundles_metrics_and_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "otlp.json"
        write_otlp(
            str(path),
            snapshot=populated_registry().snapshot(),
            spans=tracer.spans,
            meta={"tool": "test"},
        )
        doc = json.loads(path.read_text())
        assert "resourceMetrics" in doc and "resourceSpans" in doc

    def test_requires_some_payload(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_otlp(str(tmp_path / "x.json"))
