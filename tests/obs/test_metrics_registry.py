"""Tests for the metrics registry and snapshot merging."""

import json

import pytest

from repro.obs.metrics import (
    METRICS_FORMAT,
    Histogram,
    MetricsRegistry,
    bucket_upper_bound,
)


class TestInstruments:
    def test_counter_inc_and_direct_bump(self):
        r = MetricsRegistry()
        c = r.counter("c")
        c.inc()
        c.inc(4)
        c.value += 1
        assert r.counter("c").value == 6
        assert r.counter("c") is c  # stable identity for hot-path caching

    def test_gauge_set(self):
        g = MetricsRegistry().gauge("g")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5
        assert g.updates == 2

    def test_histogram_mean_empty_is_zero(self):
        # Regression: must not raise ZeroDivisionError before the first
        # observation (repr hits .mean too).
        h = Histogram("h")
        assert h.mean == 0.0
        assert "mean=0" in repr(h)

    def test_histogram_stats(self):
        h = Histogram("h")
        for v in (1, 2, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.total == 107
        assert h.vmin == 1
        assert h.vmax == 100
        assert h.mean == pytest.approx(107 / 4)

    def test_histogram_power_of_two_buckets(self):
        h = Histogram("h")
        h.observe(0)      # bucket 0
        h.observe(1)      # bucket 0 (<= 2**0)
        h.observe(2)      # bucket 1 (exact power -> lower bucket)
        h.observe(3)      # bucket 2
        h.observe(4)      # bucket 2
        h.observe(5)      # bucket 3
        assert h.buckets[0] == 2
        assert h.buckets[1] == 1
        assert h.buckets[2] == 2
        assert h.buckets[3] == 1

    def test_bucket_upper_bound(self):
        assert bucket_upper_bound(0) == 1.0
        assert bucket_upper_bound(3) == 8.0

    def test_registry_iteration(self):
        r = MetricsRegistry()
        r.counter("a")
        r.gauge("b")
        r.histogram("c")
        assert sorted(r) == ["a", "b", "c"]
        assert len(r) == 3


class TestSnapshotMerge:
    def _filled(self, scale=1):
        r = MetricsRegistry()
        r.counter("c").inc(3 * scale)
        r.gauge("g").set(2.0 * scale)
        for v in range(scale, scale + 3):
            r.histogram("h").observe(v)
        return r

    def test_snapshot_format(self):
        snap = self._filled().snapshot()
        assert snap["format"] == METRICS_FORMAT
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"]["g"] == {"value": 2.0, "updates": 1}
        assert snap["histograms"]["h"]["count"] == 3

    def test_merge_equals_serial(self):
        # Two fragments merged must equal one registry that saw everything.
        serial = MetricsRegistry()
        merged = MetricsRegistry()
        for scale in (1, 5):
            frag = self._filled(scale)
            merged.merge(frag.snapshot())
            serial.counter("c").inc(3 * scale)
            serial.gauge("g").set(2.0 * scale)
            for v in range(scale, scale + 3):
                serial.histogram("h").observe(v)
        a, b = merged.snapshot(), serial.snapshot()
        assert a["counters"] == b["counters"]
        assert a["histograms"] == b["histograms"]
        # Gauges merge to the max value seen, order-independently.
        assert a["gauges"]["g"]["value"] == 10.0
        assert a["gauges"]["g"]["updates"] == 2

    def test_merge_is_order_independent_for_counters(self):
        snaps = [self._filled(s).snapshot() for s in (1, 2, 3)]
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            fwd.merge(s)
        for s in reversed(snaps):
            rev.merge(s)
        assert fwd.snapshot() == rev.snapshot()

    def test_merge_empty_histogram_keeps_bounds(self):
        r = MetricsRegistry()
        empty = MetricsRegistry()
        empty.histogram("h")
        r.merge(empty.snapshot())
        assert r.histogram("h").count == 0
        assert r.snapshot()["histograms"]["h"]["min"] is None

    def test_merge_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"format": "bogus/1"})

    def test_write_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        self._filled().write_json(str(path))
        data = json.loads(path.read_text())
        assert data["format"] == METRICS_FORMAT
        assert data["counters"] == {"c": 3}
