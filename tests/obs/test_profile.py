"""Tests for the opt-in profilers and the deprecated Stopwatch shim."""

import warnings

import pytest

from repro.obs.profile import (
    StageProfiler,
    profiled,
    timed,
    trace_memory,
)


class TestStageProfiler:
    def test_stage_accumulates(self):
        p = StageProfiler()
        with p.stage("build"):
            pass
        with p.stage("build"):
            pass
        assert set(p.laps) == {"build"}
        assert p.laps["build"] >= 0
        assert p.total == pytest.approx(sum(p.laps.values()))

    def test_lap_alias(self):
        p = StageProfiler()
        with p.lap("x"):
            pass
        assert "x" in p.laps

    def test_stage_exposes_seconds(self):
        p = StageProfiler()
        with p.stage("s") as stage:
            pass
        assert stage.seconds >= 0
        assert p.laps["s"] == pytest.approx(stage.seconds)

    def test_add_and_report(self):
        p = StageProfiler()
        p.add("long-name", 2.0)
        p.add("b", 1.0)
        report = p.report()
        assert report.splitlines()[0].startswith("long-name")
        assert "b" in report

    def test_empty_report(self):
        assert "no laps" in StageProfiler().report()

    def test_timed_decorator_records_on_exception(self):
        p = StageProfiler()

        @timed(p, "boom")
        def explode():
            raise RuntimeError

        with pytest.raises(RuntimeError):
            explode()
        assert "boom" in p.laps


class TestProfiled:
    def test_captures_stats(self):
        with profiled(limit=5) as report:
            sum(range(1000))
        assert report.stats is not None
        assert "function calls" in report.text

    def test_captures_on_exception(self):
        with pytest.raises(ValueError):
            with profiled() as report:
                raise ValueError
        assert report.stats is not None


class TestTraceMemory:
    def test_measures_allocation(self):
        with trace_memory() as snap:
            blob = [0] * 100_000
        assert snap.peak > 0
        del blob

    def test_nested_keeps_outer_session(self):
        import tracemalloc

        with trace_memory():
            with trace_memory() as inner:
                pass
            assert inner.peak >= 0
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()


class TestStopwatchShim:
    def test_stopwatch_warns_and_subclasses(self):
        from repro.util.timing import Stopwatch

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sw = Stopwatch()
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert isinstance(sw, StageProfiler)
        with sw.lap("legacy"):
            pass
        assert "legacy" in sw.laps
