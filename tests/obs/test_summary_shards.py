"""Tests for trace-summary shard grouping and plan-quality surfacing."""

from repro.obs.summary import (
    ShardRow,
    SpanAggregate,
    render_summary,
    summarize_spans,
)
from repro.obs.trace import Span


def _span(span_id, parent_id, name, seq, wall=(0.0, 0.1), attrs=None):
    return Span(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        seq_start=seq[0],
        seq_end=seq[1],
        wall_start=wall[0],
        wall_end=wall[1],
        attrs=attrs or {},
    )


def merged_shard_spans():
    """A hand-built plan_sharded trace: 2 shards, one stage each."""
    return [
        _span(0, None, "plan_sharded", (0, 11), (0.0, 1.0),
              {"parts": 2, "cost_gap": 0.5, "dummy_traffic_ratio": 0.1,
               "lpt_imbalance": 1.25, "cost": 100.0}),
        _span(1, 0, "shard.pool", (1, 10), (0.0, 0.9)),
        _span(2, 1, "shard.plan", (2, 5), (0.1, 0.4),
              {"part": 0, "servers": 8}),
        _span(3, 2, "stage", (3, 4), (0.1, 0.3)),
        _span(4, 1, "shard.plan", (6, 9), (0.4, 0.8),
              {"part": 1, "servers": 6}),
        _span(5, 4, "stage", (7, 8), (0.4, 0.6)),
    ]


class TestShardGrouping:
    def test_rows_keyed_by_part(self):
        summary = summarize_spans({}, merged_shard_spans())
        assert [row.part for row in summary.shards] == [0, 1]

    def test_descendants_attributed_to_owning_shard(self):
        summary = summarize_spans({}, merged_shard_spans())
        by_part = {row.part: row for row in summary.shards}
        # shard.plan + its stage child
        assert by_part[0].spans == 2
        assert by_part[1].spans == 2

    def test_shard_wall_and_servers(self):
        summary = summarize_spans({}, merged_shard_spans())
        by_part = {row.part: row for row in summary.shards}
        assert by_part[0].servers == 8
        assert by_part[1].servers == 6
        assert abs(by_part[0].wall - 0.3) < 1e-9

    def test_unsharded_trace_has_no_rows(self):
        spans = [_span(0, None, "pipeline", (0, 1))]
        summary = summarize_spans({}, spans)
        assert summary.shards == []
        assert summary.quality == {}

    def test_quality_read_from_root_span(self):
        summary = summarize_spans({}, merged_shard_spans())
        assert summary.quality == {
            "cost": 100.0,
            "cost_gap": 0.5,
            "dummy_traffic_ratio": 0.1,
            "lpt_imbalance": 1.25,
        }

    def test_render_includes_sections(self):
        text = render_summary(summarize_spans({}, merged_shard_spans()))
        assert "Per-shard breakdown:" in text
        assert "Plan quality:" in text
        assert "cost_gap" in text

    def test_render_without_shards_omits_sections(self):
        text = render_summary(
            summarize_spans({}, [_span(0, None, "pipeline", (0, 1))])
        )
        assert "Per-shard breakdown:" not in text
        assert "Plan quality:" not in text


class TestZeroObservationGuards:
    def test_mean_wall_zero_count(self):
        # Regression: empty aggregate must not divide by zero.
        assert SpanAggregate("s").mean_wall == 0.0

    def test_shard_row_defaults(self):
        row = ShardRow(part=0)
        assert row.spans == 0 and row.wall == 0.0

    def test_render_empty_summary(self):
        text = render_summary(summarize_spans({}, []))
        assert "no spans recorded" in text
