"""Tests for the span tracer and the rtsp-trace/1 format."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_FORMAT,
    Tracer,
    load_trace,
    validate_trace_file,
    validate_trace_lines,
)
from repro.util.errors import ConfigurationError


class TestTracer:
    def test_span_nesting_and_ids(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        # Close order: inner first.
        assert [s.name for s in t.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.span_id != inner.span_id

    def test_seq_numbers_bracket_children(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        outer = next(s for s in t.spans if s.name == "outer")
        a = next(s for s in t.spans if s.name == "a")
        b = next(s for s in t.spans if s.name == "b")
        assert outer.seq_start < a.seq_start < a.seq_end
        assert a.seq_end < b.seq_start < b.seq_end < outer.seq_end

    def test_attrs_and_annotate(self):
        t = Tracer()
        with t.span("s", x=1) as span:
            t.annotate(cost=42.0)
        assert span.attrs == {"x": 1, "cost": 42.0}

    def test_annotate_outside_span_is_noop(self):
        t = Tracer()
        t.annotate(ignored=True)  # must not raise
        assert t.spans == []

    def test_count_targets_innermost_span(self):
        t = Tracer()
        with t.span("s") as span:
            t.count("hits")
            t.count("hits", 2)
        t.count("toplevel", 5)
        assert span.counters == {"hits": 3}
        assert t.counters == {"toplevel": 5}

    def test_event_is_closed_span(self):
        t = Tracer()
        span = t.event("marker", k=1)
        assert span.seq_end >= 0
        assert t.spans == [span]

    def test_exception_sets_error_attr(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        assert t.spans[0].attrs["error"] == "ValueError"

    def test_adopt_rebases_ids_and_seqs(self):
        parent = Tracer()
        with parent.span("local"):
            pass
        frag = Tracer()
        with frag.span("remote"):
            with frag.span("child"):
                pass
        parent.adopt(frag.spans)
        ids = [s.span_id for s in parent.spans]
        assert len(set(ids)) == len(ids)
        remote = next(s for s in parent.spans if s.name == "remote")
        child = next(s for s in parent.spans if s.name == "child")
        assert child.parent_id == remote.span_id
        local = next(s for s in parent.spans if s.name == "local")
        assert remote.seq_start > local.seq_end

    def test_adopt_while_open_raises(self):
        t = Tracer()
        frag = Tracer()
        with frag.span("f"):
            pass
        with t.span("open"):
            with pytest.raises(ConfigurationError):
                t.adopt(frag.spans)

    def test_adopt_order_determines_logical_stream(self):
        def fragment(name):
            f = Tracer()
            with f.span(name):
                pass
            return f.spans

        a = Tracer()
        a.adopt(fragment("one"))
        a.adopt(fragment("two"))
        b = Tracer()
        b.adopt(fragment("one"))
        b.adopt(fragment("two"))
        assert a.logical_lines() == b.logical_lines()

    def test_logical_lines_exclude_wall(self):
        t = Tracer()
        with t.span("s"):
            pass
        for line in t.logical_lines():
            assert "wall" not in json.loads(line)


class TestSerialization:
    def _traced(self):
        t = Tracer(meta={"figure": "4"})
        with t.span("outer", x=1):
            with t.span("inner"):
                t.count("n", 3)
        return t

    def test_roundtrip(self, tmp_path):
        t = self._traced()
        path = str(tmp_path / "trace.jsonl")
        t.write_jsonl(path)
        header, spans = load_trace(path)
        assert header["format"] == TRACE_FORMAT
        assert header["meta"] == {"figure": "4"}
        assert header["spans"] == len(spans) == 2
        assert [s.logical_record() for s in spans] == [
            s.logical_record() for s in t.spans
        ]

    def test_validate_accepts_own_output(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._traced().write_jsonl(path)
        assert validate_trace_file(path) == []

    def test_validate_rejects_wrong_format(self):
        assert validate_trace_lines(['{"format": "bogus/9"}'])

    def test_validate_rejects_span_count_mismatch(self):
        header = json.dumps(
            {"format": TRACE_FORMAT, "meta": {}, "spans": 2, "counters": {}}
        )
        assert any(
            "declares 2 spans" in e for e in validate_trace_lines([header])
        )

    def test_validate_rejects_dangling_parent(self):
        t = self._traced()
        lines = t.to_lines()
        rec = json.loads(lines[1])
        rec["parent"] = 999
        lines[1] = json.dumps(rec)
        assert any("parent 999" in e for e in validate_trace_lines(lines))

    def test_validate_empty(self):
        assert validate_trace_lines([])

    def test_load_invalid_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "nope"}\n')
        with pytest.raises(ConfigurationError):
            load_trace(str(path))

    def test_chrome_export(self, tmp_path):
        t = self._traced()
        events = t.chrome_events()
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"]["counters"] == {"n": 3}
        path = tmp_path / "chrome.json"
        t.write_chrome(str(path))
        payload = json.loads(path.read_text())
        assert payload["otherData"]["format"] == TRACE_FORMAT
        assert len(payload["traceEvents"]) == 2


class TestNullTracer:
    def test_all_ops_are_noops(self):
        t = NullTracer()
        with t.span("s", x=1) as span:
            assert span is None
            t.count("n")
            t.annotate(a=2)
        t.event("e")
        assert t.spans == ()
        assert not t.enabled

    def test_singleton_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_span_records_are_json_stable(self):
        span = Span(span_id=0, parent_id=None, name="s", seq_start=0, seq_end=1)
        rec = span.record()
        assert rec["seq"] == [0, 1]
        assert rec["wall"] == [0.0, 0.0]
