"""Malformed-input coverage for trace validation and Chrome escaping."""

import json

import pytest

from repro.obs.trace import (
    TRACE_FORMAT,
    Tracer,
    validate_trace_file,
    validate_trace_lines,
)


def _header(spans=1):
    return json.dumps(
        {"format": TRACE_FORMAT, "meta": {}, "spans": spans, "counters": {}}
    )


def _span_line(**overrides):
    rec = {
        "type": "span",
        "id": 0,
        "parent": None,
        "name": "s",
        "seq": [0, 1],
        "wall": [0.0, 0.1],
        "attrs": {},
        "counters": {},
    }
    rec.update(overrides)
    return json.dumps(rec)


class TestMalformedTraces:
    def test_header_not_json(self):
        assert any(
            "header" in p for p in validate_trace_lines(["{broken"])
        )

    def test_header_not_object(self):
        assert validate_trace_lines(["[1, 2]"]) != []

    def test_header_bad_span_count_type(self):
        header = json.dumps(
            {"format": TRACE_FORMAT, "meta": {}, "spans": "two", "counters": {}}
        )
        assert any(
            "spans" in p for p in validate_trace_lines([header])
        )

    def test_body_not_json(self):
        problems = validate_trace_lines([_header(1), "{oops"])
        assert any("line 2" in p for p in problems)

    def test_body_wrong_type_tag(self):
        problems = validate_trace_lines(
            [_header(1), _span_line(type="event")]
        )
        assert any("type" in p for p in problems)

    def test_body_non_integer_id(self):
        problems = validate_trace_lines([_header(1), _span_line(id="zero")])
        assert any("'id'" in p for p in problems)

    def test_body_bad_parent_type(self):
        problems = validate_trace_lines(
            [_header(1), _span_line(parent="root")]
        )
        assert any("parent" in p for p in problems)

    def test_body_bad_name_type(self):
        problems = validate_trace_lines([_header(1), _span_line(name=7)])
        assert any("name" in p for p in problems)

    def test_body_bad_seq_shape(self):
        problems = validate_trace_lines([_header(1), _span_line(seq=[1])])
        assert problems != []

    def test_duplicate_span_ids(self):
        problems = validate_trace_lines(
            [_header(2), _span_line(id=0), _span_line(id=0)]
        )
        assert problems != []

    def test_validate_file_missing(self, tmp_path):
        with pytest.raises(OSError):
            validate_trace_file(str(tmp_path / "absent.jsonl"))

    def test_validate_file_garbage(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        assert validate_trace_file(str(path)) != []


class TestChromeEscaping:
    def _trace_with_attrs(self, **attrs):
        tracer = Tracer()
        with tracer.span("s", **attrs):
            pass
        return tracer

    def test_non_ascii_attrs_survive(self, tmp_path):
        tracer = self._trace_with_attrs(note="καλημέρα ☃")
        path = tmp_path / "chrome.json"
        tracer.write_chrome(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        args = payload["traceEvents"][0]["args"]
        assert args["note"] == "καλημέρα ☃"

    def test_quotes_and_backslashes_escaped(self, tmp_path):
        tricky = 'he said "hi\\there"\nnewline'
        tracer = self._trace_with_attrs(note=tricky)
        path = tmp_path / "chrome.json"
        tracer.write_chrome(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["traceEvents"][0]["args"]["note"] == tricky

    def test_nested_dict_attrs_survive(self, tmp_path):
        nested = {"outer": {"inner": [1, 2, {"deep": "value"}]}}
        tracer = self._trace_with_attrs(payload=nested)
        path = tmp_path / "chrome.json"
        tracer.write_chrome(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["traceEvents"][0]["args"]["payload"] == nested

    def test_chrome_events_json_serializable(self):
        tracer = self._trace_with_attrs(
            mixed={"α": ['"', "\\", {"β": None}]}
        )
        dumped = json.dumps(tracer.chrome_events(), ensure_ascii=True)
        assert json.loads(dumped)[0]["args"]["mixed"]["α"][2]["β"] is None
