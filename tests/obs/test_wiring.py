"""Observability wiring through the build / simulate / repair pipeline.

The contract under test is two-sided: with instruments installed the hot
paths actually record (non-zero counters, per-stage deltas, spans), and
with instruments off the outputs are byte-identical to an unobserved run
— observability must never perturb the algorithms.
"""

import json

from repro.core.pipeline import build_pipeline
from repro.model.state import SystemState
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    observed,
    use_metrics,
    use_tracer,
)
from repro.robust.faults import FaultPlan
from repro.robust.repair import RepairEngine
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.workloads.regular import paper_instance


def _instance(rng=3):
    return paper_instance(replicas=2, num_servers=8, num_objects=20, rng=rng)


def _schedule_bytes(schedule):
    return json.dumps(
        [repr(a) for a in schedule.actions()], sort_keys=True
    ).encode()


class TestBuilderMetrics:
    def test_golcf_build_records_counters(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            build_pipeline("GOLCF").run(_instance(), rng=0)
        counters = registry.counter_values()
        assert counters["builder.transfers"] > 0
        assert counters["builder.candidates_scanned"] > 0
        assert counters["builder.selector_queries"] > 0
        assert counters["nearest_index.scalar_queries"] > 0
        # Cold scalar answers are row-cache misses by definition.
        assert counters["nearest_index.cache_misses"] > 0

    def test_pipeline_stage_counter_deltas(self):
        registry = MetricsRegistry()
        pipeline = build_pipeline("GOLCF+H1+H2+OP1")
        with use_metrics(registry):
            _, stats = pipeline.run_with_stats(_instance(), rng=0)
        assert [s.stage for s in stats] == ["GOLCF", "H1", "H2", "OP1"]
        build = stats[0]
        assert build.counters.get("builder.transfers", 0) > 0
        # Stage deltas must sum to the registry totals.
        total = sum(
            s.counters.get("builder.transfers", 0) for s in stats
        )
        assert total == registry.counter_values()["builder.transfers"]

    def test_disabled_metrics_do_not_record(self):
        registry = MetricsRegistry()
        build_pipeline("GOLCF").run(_instance(), rng=0)  # no context
        assert registry.counter_values() == {}


class TestExecutorMetrics:
    def test_simulate_parallel_records_queue_depth(self):
        instance = _instance()
        schedule = build_pipeline("GOLCF+H1+H2").run(instance, rng=0)
        registry = MetricsRegistry()
        with use_metrics(registry):
            simulate_parallel(
                schedule, instance, bandwidths_from_costs(instance.costs)
            )
        snap = registry.snapshot()
        assert snap["counters"]["executor.transfers_started"] > 0
        assert snap["histograms"]["executor.queue_depth"]["count"] > 0
        assert snap["histograms"]["executor.in_flight"]["count"] > 0


class TestRepairMetrics:
    def test_repair_records_rounds_and_replans(self):
        instance = _instance(rng=5)
        engine = RepairEngine("GOLCF+H1+H2")
        baseline = simulate_parallel(
            engine.pipeline.run(instance, rng=1),
            instance,
            bandwidths_from_costs(instance.costs),
        )
        plan = FaultPlan.generate(
            instance, 0.3, seed=11, horizon=max(baseline.makespan, 1.0)
        )
        registry = MetricsRegistry()
        tracer = Tracer()
        with observed(tracer=tracer, metrics=registry):
            report = engine.execute(instance, plan, rng=1)
        counters = registry.counter_values()
        assert counters["repair.rounds"] == report.rounds
        assert counters.get("repair.replans", 0) == report.replans
        round_spans = [s for s in tracer.spans if s.name == "repair.round"]
        # The final (successful) simulate opens a span but is not a
        # repair round, hence the +1.
        assert len(round_spans) == report.rounds + 1

    def test_report_backoff_and_replans_fields(self):
        instance = _instance(rng=5)
        engine = RepairEngine("GSDF")
        plan = FaultPlan.generate(instance, 0.0, seed=1, horizon=10.0)
        report = engine.execute(instance, plan, rng=1)
        assert report.replans == 0
        assert report.backoff_total == 0.0


class TestNonPerturbation:
    def test_observed_run_matches_unobserved(self):
        instance = _instance()
        plain = build_pipeline("GOLCF+H1+H2+OP1").run(instance, rng=7)
        with observed(tracer=Tracer(), metrics=MetricsRegistry()):
            traced = build_pipeline("GOLCF+H1+H2+OP1").run(instance, rng=7)
        assert _schedule_bytes(plain) == _schedule_bytes(traced)

    def test_null_tracer_matches_unobserved(self):
        instance = _instance()
        plain = build_pipeline("GOLCF").run(instance, rng=7)
        with use_tracer(NULL_TRACER):
            nulled = build_pipeline("GOLCF").run(instance, rng=7)
        assert _schedule_bytes(plain) == _schedule_bytes(nulled)


class TestIndexCopy:
    def test_copied_state_answers_nearest(self):
        # Regression: NearestSourceIndex.copy() once dropped ``_dummy``,
        # so queries on a copied state crashed on the cold path.
        instance = _instance()
        state = SystemState(instance)
        state.nearest_costs(0)  # promote obj 0 to the cached regime
        dup = state.copy()
        for obj in range(instance.num_objects):
            for server in range(instance.num_servers):
                assert dup.nearest(server, obj) == state.nearest(server, obj)
