"""Tests for greedy replica placement."""

import numpy as np
import pytest

from repro.network.costmatrix import uniform_cost_matrix
from repro.placement.greedy import access_cost, greedy_placement
from repro.util.errors import ConfigurationError


@pytest.fixture
def setup():
    m, n = 5, 8
    rng = np.random.default_rng(0)
    costs = np.abs(rng.normal(5, 2, size=(m, m)))
    costs = (costs + costs.T) / 2
    np.fill_diagonal(costs, 0.0)
    sizes = np.ones(n)
    capacities = np.full(m, 4.0)
    demand = rng.integers(0, 50, size=(m, n)).astype(float)
    return costs, sizes, capacities, demand


class TestAccessCost:
    def test_single_replica(self):
        costs = uniform_cost_matrix(2, 3.0)
        x = np.array([[1], [0]], dtype=np.int8)
        demand = np.array([[2.0], [4.0]])
        # client 0 local (0), client 1 pays 3 each for 4 requests
        assert access_cost(x, costs, np.array([1.0]), demand) == 12.0

    def test_nearest_replica_used(self):
        costs = np.array([[0.0, 1.0, 9.0], [1.0, 0.0, 9.0], [9.0, 9.0, 0.0]])
        x = np.array([[1], [0], [1]], dtype=np.int8)
        demand = np.array([[0.0], [1.0], [0.0]])
        assert access_cost(x, costs, np.array([1.0]), demand) == 1.0

    def test_unplaced_object_infinite(self):
        costs = uniform_cost_matrix(2)
        x = np.zeros((2, 1), dtype=np.int8)
        assert access_cost(x, costs, np.ones(1), np.ones((2, 1))) == float("inf")


class TestGreedyPlacement:
    def test_every_object_placed(self, setup):
        x = greedy_placement(*setup)
        assert (x.sum(axis=0) >= 1).all()

    def test_capacities_respected(self, setup):
        costs, sizes, capacities, demand = setup
        x = greedy_placement(costs, sizes, capacities, demand)
        assert (x.astype(float) @ sizes <= capacities + 1e-9).all()

    def test_more_capacity_never_hurts(self, setup):
        costs, sizes, capacities, demand = setup
        tight = greedy_placement(costs, sizes, capacities, demand)
        loose = greedy_placement(costs, sizes, capacities * 2, demand)
        assert access_cost(loose, costs, sizes, demand) <= access_cost(
            tight, costs, sizes, demand
        ) + 1e-9

    def test_max_replicas_cap(self, setup):
        costs, sizes, capacities, demand = setup
        x = greedy_placement(
            costs, sizes, capacities, demand, max_replicas=1
        )
        assert (x.sum(axis=0) == 1).all()

    def test_min_replicas(self, setup):
        costs, sizes, capacities, demand = setup
        x = greedy_placement(costs, sizes, capacities, demand, min_replicas=2)
        assert (x.sum(axis=0) >= 2).all()

    def test_popular_objects_get_more_replicas(self):
        m, n = 6, 4
        costs = uniform_cost_matrix(m, 5.0)
        sizes = np.ones(n)
        capacities = np.full(m, 2.0)
        demand = np.zeros((m, n))
        demand[:, 0] = 100.0  # object 0 is hot everywhere
        demand[:, 1:] = 1.0
        x = greedy_placement(costs, sizes, capacities, demand)
        counts = x.sum(axis=0)
        assert counts[0] == counts.max()

    def test_insufficient_capacity_raises(self):
        costs = uniform_cost_matrix(2)
        with pytest.raises(ConfigurationError):
            greedy_placement(
                costs, np.ones(5), np.array([1.0, 1.0]), np.ones((2, 5))
            )

    def test_bad_demand_shape(self, setup):
        costs, sizes, capacities, _ = setup
        with pytest.raises(ConfigurationError):
            greedy_placement(costs, sizes, capacities, np.ones((2, 2)))

    def test_bad_replica_bounds(self, setup):
        costs, sizes, capacities, demand = setup
        with pytest.raises(ConfigurationError):
            greedy_placement(
                costs, sizes, capacities, demand, min_replicas=3, max_replicas=2
            )
