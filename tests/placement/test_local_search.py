"""Tests for the local-search placement refiner."""

import numpy as np
import pytest

from repro.network.costmatrix import uniform_cost_matrix
from repro.placement.greedy import access_cost, greedy_placement
from repro.placement.local_search import local_search_placement
from repro.util.errors import ConfigurationError


@pytest.fixture
def setup():
    m, n = 5, 6
    rng = np.random.default_rng(7)
    costs = np.abs(rng.normal(5, 2, size=(m, m)))
    costs = (costs + costs.T) / 2
    np.fill_diagonal(costs, 0.0)
    sizes = np.ones(n)
    capacities = np.full(m, 3.0)
    demand = rng.integers(0, 50, size=(m, n)).astype(float)
    return costs, sizes, capacities, demand


class TestLocalSearch:
    def test_never_worse(self, setup):
        costs, sizes, capacities, demand = setup
        x0 = greedy_placement(costs, sizes, capacities, demand)
        x1 = local_search_placement(x0, costs, sizes, capacities, demand, rng=0)
        assert access_cost(x1, costs, sizes, demand) <= access_cost(
            x0, costs, sizes, demand
        ) + 1e-9

    def test_improves_bad_start(self, setup):
        costs, sizes, capacities, demand = setup
        # adversarial start: object k on server (k % m), ignoring demand
        x0 = np.zeros((5, 6), dtype=np.int8)
        for k in range(6):
            x0[k % 5, k] = 1
        x1 = local_search_placement(x0, costs, sizes, capacities, demand, rng=0)
        assert access_cost(x1, costs, sizes, demand) < access_cost(
            x0, costs, sizes, demand
        )

    def test_respects_capacities(self, setup):
        costs, sizes, capacities, demand = setup
        x0 = greedy_placement(costs, sizes, capacities, demand)
        x1 = local_search_placement(x0, costs, sizes, capacities, demand, rng=1)
        assert (x1.astype(float) @ sizes <= capacities + 1e-9).all()

    def test_input_not_mutated(self, setup):
        costs, sizes, capacities, demand = setup
        x0 = greedy_placement(costs, sizes, capacities, demand)
        snapshot = x0.copy()
        local_search_placement(x0, costs, sizes, capacities, demand, rng=2)
        assert (x0 == snapshot).all()

    def test_zero_moves_is_noop(self, setup):
        costs, sizes, capacities, demand = setup
        x0 = greedy_placement(costs, sizes, capacities, demand)
        x1 = local_search_placement(
            x0, costs, sizes, capacities, demand, max_moves=0, rng=3
        )
        assert (x0 == x1).all()

    def test_overfull_start_rejected(self):
        costs = uniform_cost_matrix(2)
        x0 = np.ones((2, 3), dtype=np.int8)
        with pytest.raises(ConfigurationError):
            local_search_placement(
                x0, costs, np.ones(3), np.array([1.0, 1.0]), np.ones((2, 3))
            )
