"""Property tests for :mod:`repro.exact`.

Two contracts are exercised on random tiny instances:

* **Optimality floor** — no heuristic pipeline beats the branch-and-
  bound optimum (if one ever does, the "exact" solver is not exact);
* **Oracle agreement** — the independent invariant checker and the
  model layer's ``Schedule.replay`` accept exactly the same schedules
  and recompute identical costs, including on mutated (invalid)
  schedules.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_builder
from repro.exact import SolverBudget, check_invariants, solve_optimal
from repro.model.actions import Delete, Transfer
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule

BUILDERS = ["RDF", "GSDF", "AR", "GOLCF"]

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tiny_instances(draw) -> RtspInstance:
    """Instances small enough that the exact solver proves quickly."""
    m = draw(st.integers(2, 4))
    n = draw(st.integers(1, 3))
    sizes = np.array(
        draw(st.lists(st.integers(1, 3), min_size=n, max_size=n)), dtype=float
    )
    bits = st.lists(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        min_size=m,
        max_size=m,
    )
    x_old = np.array(draw(bits), dtype=np.int8)
    x_new = np.array(draw(bits), dtype=np.int8)
    loads_old = x_old.astype(float) @ sizes
    loads_new = x_new.astype(float) @ sizes
    slack = np.array(
        draw(st.lists(st.integers(0, 3), min_size=m, max_size=m)), dtype=float
    )
    capacities = np.maximum(loads_old, loads_new) + slack
    weights = draw(
        st.lists(st.integers(1, 9), min_size=m * m, max_size=m * m)
    )
    costs = np.array(weights, dtype=float).reshape(m, m)
    costs = (costs + costs.T) / 2.0
    np.fill_diagonal(costs, 0.0)
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new)


@settings(**COMMON)
@given(inst=tiny_instances(), seed=st.integers(0, 2**31 - 1))
def test_no_builder_beats_the_exact_optimum(inst, seed):
    result = solve_optimal(inst)
    assert result.proved_optimal
    for name in BUILDERS:
        schedule = get_builder(name).build(inst, rng=seed)
        assert schedule.cost(inst) >= result.cost - 1e-9, (
            f"{name} beat the 'optimal' cost — the exact solver is broken"
        )


@settings(**COMMON)
@given(inst=tiny_instances(), seed=st.integers(0, 2**31 - 1))
def test_oracle_agrees_on_valid_schedules(inst, seed):
    for name in BUILDERS:
        schedule = get_builder(name).build(inst, rng=seed)
        model = schedule.validate(inst)
        oracle = check_invariants(inst, schedule)
        assert model.ok and oracle.ok
        assert oracle.cost == float(np.float64(model.cost)) or (
            abs(oracle.cost - model.cost) <= 1e-9 * max(1.0, abs(model.cost))
        )
        assert oracle.dummy_transfers == schedule.count_dummy_transfers(inst)


def _mutate(schedule: Schedule, inst: RtspInstance, rng) -> Schedule:
    """A random small corruption of a schedule (possibly still valid)."""
    actions = list(schedule)
    mode = rng.integers(0, 4)
    if mode == 0 and actions:  # drop one action
        del actions[int(rng.integers(len(actions)))]
    elif mode == 1 and len(actions) >= 2:  # swap two actions
        a, b = rng.choice(len(actions), size=2, replace=False)
        actions[a], actions[b] = actions[b], actions[a]
    elif mode == 2 and actions:  # duplicate one action
        actions.append(actions[int(rng.integers(len(actions)))])
    else:  # inject an arbitrary in-range action
        if int(rng.integers(2)):
            actions.append(
                Transfer(
                    int(rng.integers(inst.num_servers)),
                    int(rng.integers(inst.num_objects)),
                    int(rng.integers(inst.num_servers + 1)),
                )
            )
        else:
            actions.append(
                Delete(
                    int(rng.integers(inst.num_servers)),
                    int(rng.integers(inst.num_objects)),
                )
            )
    return Schedule(actions)


@settings(**COMMON)
@given(inst=tiny_instances(), seed=st.integers(0, 2**31 - 1))
def test_oracle_agrees_on_mutated_schedules(inst, seed):
    rng = np.random.default_rng(seed)
    base = get_builder("GSDF").build(inst, rng=int(seed))
    for _ in range(4):
        mutated = _mutate(base, inst, rng)
        model_ok = mutated.is_valid(inst)
        oracle_ok = check_invariants(inst, mutated).ok
        assert model_ok == oracle_ok, (
            f"oracle disagreement on {list(mutated)}: "
            f"model={model_ok} oracle={oracle_ok}"
        )


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(inst=tiny_instances())
def test_budget_truncation_is_sound(inst):
    """A starved search still returns a valid schedule and true bounds."""
    full = solve_optimal(inst)
    starved = solve_optimal(inst, budget=SolverBudget(max_nodes=2))
    if len(starved.schedule) or not np.isinf(starved.cost):
        assert check_invariants(inst, starved.schedule).ok
        assert starved.lower_bound - 1e-9 <= full.cost <= starved.cost + 1e-9
