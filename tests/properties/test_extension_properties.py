"""Property-based tests for the extension components (GMC, NSR, timing).

Reuses the random-instance strategy of ``test_schedule_properties`` and
checks the invariants the extensions promise:

* GMC emits valid schedules on arbitrary instances;
* NSR is validity-preserving, cost-monotone and idempotent;
* the timing executor's makespan is sandwiched between the critical path
  and the sequential time, and its trace replays validly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_builder, get_optimizer
from repro.model.schedule import Schedule
from repro.timing import bandwidths_from_costs, simulate_parallel
from tests.properties.test_schedule_properties import COMMON, instances


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_gmc_produces_valid_schedules(inst, seed):
    schedule = get_builder("GMC").build(inst, rng=seed)
    report = schedule.validate(inst)
    assert report.ok, f"{report.message} @ {report.position}"


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_nsr_validity_cost_and_idempotence(inst, seed):
    base = get_builder("RDF").build(inst, rng=seed)
    nsr = get_optimizer("NSR")
    once = nsr.optimize(inst, base)
    assert once.validate(inst).ok
    assert once.cost(inst) <= base.cost(inst) + 1e-9
    twice = nsr.optimize(inst, once)
    assert twice == once


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_timing_sandwich_and_trace_validity(inst, seed):
    schedule = get_builder("GSDF").build(inst, rng=seed)
    bandwidths = bandwidths_from_costs(inst.costs)
    result = simulate_parallel(schedule, inst, bandwidths)
    assert result.critical_path <= result.makespan + 1e-9
    assert result.makespan <= result.sequential_time + 1e-9
    order = sorted(result.trace, key=lambda t: (t.start, t.position))
    assert Schedule([t.action for t in order]).validate(inst).ok


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_more_slots_never_slower(inst, seed):
    schedule = get_builder("AR").build(inst, rng=seed)
    bandwidths = bandwidths_from_costs(inst.costs)
    narrow = simulate_parallel(schedule, inst, bandwidths, out_slots=1, in_slots=1)
    wide = simulate_parallel(schedule, inst, bandwidths, out_slots=3, in_slots=3)
    assert wide.makespan <= narrow.makespan + 1e-9
