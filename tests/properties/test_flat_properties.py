"""Property tests for the flat builder core (repro.flat).

The flat core's whole contract is byte-identity: for every builder and
every seed, the flat path must emit exactly the action sequence the
reference object path emits. Hypothesis drives random instances
(including forced-dummy objects, empty servers, fractional sizes and
zero-slack capacities) through both cores; the exact invariant oracle
then re-checks the flat schedules from first principles.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_builder
from repro.exact.differential import DEFAULT_FAMILIES, family_instances
from repro.exact.validate import check_invariants
from repro.flat import FlatSchedule, flat_build, flat_builder_names
from repro.model.instance import RtspInstance

BUILDERS = flat_builder_names()

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw, fractional: bool = False) -> RtspInstance:
    m = draw(st.integers(2, 5))
    n = draw(st.integers(1, 5))
    if fractional:
        sizes = np.array(
            draw(
                st.lists(
                    st.floats(0.25, 4.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    else:
        sizes = np.array(
            draw(st.lists(st.integers(1, 4), min_size=n, max_size=n)),
            dtype=float,
        )
    bits = st.lists(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        min_size=m,
        max_size=m,
    )
    x_old = np.array(draw(bits), dtype=np.int8)
    x_new = np.array(draw(bits), dtype=np.int8)
    loads_old = x_old.astype(float) @ sizes
    loads_new = x_new.astype(float) @ sizes
    slack = np.array(
        draw(st.lists(st.integers(0, 4), min_size=m, max_size=m)),
        dtype=float,
    )
    capacities = np.maximum(loads_old, loads_new) + slack
    weights = draw(
        st.lists(st.integers(1, 9), min_size=m * m, max_size=m * m)
    )
    costs = np.array(weights, dtype=float).reshape(m, m)
    costs = (costs + costs.T) / 2.0
    np.fill_diagonal(costs, 0.0)
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new)


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_flat_matches_reference_for_every_builder(inst, seed):
    for name in BUILDERS:
        ref = get_builder(name).build(inst, rng=seed)
        flat = flat_build(name, inst, rng=seed)
        assert ref.actions() == flat.actions(), (
            f"{name} flat/reference divergence at seed {seed}"
        )


@settings(**COMMON)
@given(inst=instances(fractional=True), seed=st.integers(0, 2**31 - 1))
def test_flat_matches_reference_on_fractional_sizes(inst, seed):
    for name in BUILDERS:
        ref = get_builder(name).build(inst, rng=seed)
        flat = flat_build(name, inst, rng=seed)
        assert ref.actions() == flat.actions(), (
            f"{name} flat/reference divergence (fractional) at seed {seed}"
        )


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_flat_cost_is_bit_identical_pre_materialization(inst, seed):
    for name in BUILDERS:
        ref = get_builder(name).build(inst, rng=seed)
        flat = flat_build(name, inst, rng=seed)
        assert isinstance(flat, FlatSchedule)
        assert not flat.materialized
        # Vectorized arena cost before materialization...
        assert flat.cost(inst) == ref.cost(inst)
        # ...and the object-path cost after.
        flat.actions()
        assert flat.materialized
        assert flat.cost(inst) == ref.cost(inst)


def test_flat_schedules_pass_exact_oracle_on_differential_families():
    # The <=6x8 differential families are the exact subsystem's
    # canonical corpus; every flat schedule must satisfy the
    # first-principles invariant oracle, not just mirror the reference.
    for family in DEFAULT_FAMILIES:
        for inst in family_instances(family):
            for name in BUILDERS:
                for seed in (0, 1, 2):
                    flat = flat_build(name, inst, rng=seed)
                    report = check_invariants(inst, flat)
                    assert report.ok, (
                        f"{family}/{name}/seed={seed}: {report.summary()}"
                    )
