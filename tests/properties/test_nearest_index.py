"""Property-based tests: the nearest-source index vs. brute force.

The index answers the paper's ``N(i,k,X)`` / ``N2(i,k,X)`` queries in two
regimes — scalar scans for cold objects and incrementally-maintained
cached argmin rows for hot (batch-queried) objects. Both must agree with
:func:`repro.model.nearest.nearest_bruteforce`, the plain scalar scan
over the placement column, after *any* interleaving of transfers,
deletions, and undos. The walk below drives one cold and one hot state
through identical random action sequences and compares every (server,
object) query against the oracle at every step, which exercises the
vectorized top-2 insert (``add_holder``), the affected-row partial
rebuild (``remove_holder``), dummy degradation, and lowest-index
tie-breaking (cost ties are common since link weights are small ints).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.actions import Delete, Transfer
from repro.model.nearest import nearest_bruteforce
from repro.model.state import SystemState
from tests.properties.test_schedule_properties import COMMON, instances


def _assert_matches_bruteforce(state: SystemState) -> None:
    inst = state.instance
    holds = state.placement()
    index = state.index
    for obj in range(inst.num_objects):
        cached = index.is_cached(obj)
        for server in range(inst.num_servers):
            ref = nearest_bruteforce(inst, holds, server, obj)
            got = state.nearest(server, obj)
            assert got == ref, (server, obj, got, ref)
            assert state.nearest_cost(server, obj) == float(
                inst.costs[server, ref]
            )
            first, second = state.nearest_pair(server, obj)
            assert first == ref
            if ref == inst.dummy:
                assert second == inst.dummy
            else:
                assert second == nearest_bruteforce(
                    inst, holds, server, obj, exclude=(ref,)
                )
                # Explicit exclusion must agree with the oracle too.
                assert state.nearest(server, obj, exclude=(ref,)) == second
            if cached:
                # Batch API over the same cached rows.
                assert float(index.nearest_cost_row(obj)[server]) == float(
                    inst.costs[server, ref]
                )


def _random_valid_action(state: SystemState, rng):
    inst = state.instance
    actions = []
    for i in range(inst.num_servers):
        for k in range(inst.num_objects):
            if state.holds(i, k):
                actions.append(Delete(i, k))
            else:
                transfer = Transfer(i, k, state.nearest(i, k))
                if state.is_valid(transfer):
                    actions.append(transfer)
    if not actions:
        return None
    return actions[int(rng.integers(len(actions)))]


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_index_matches_bruteforce_under_random_mutation(inst, seed):
    rng = np.random.default_rng(seed)
    cold = SystemState(inst)  # scalar-scan regime throughout
    hot = SystemState(inst)  # cached rows, incrementally maintained
    for obj in range(inst.num_objects):
        hot.index.nearest_row(obj)
        assert hot.index.is_cached(obj)
    _assert_matches_bruteforce(cold)
    _assert_matches_bruteforce(hot)
    for _ in range(25):
        action = _random_valid_action(cold, rng)
        if action is None:
            break
        cold.apply(action)
        hot.apply(action)
        if rng.random() < 0.3:
            # Undo must route through the same index maintenance.
            cold.undo(action)
            hot.undo(action)
        _assert_matches_bruteforce(cold)
        _assert_matches_bruteforce(hot)
    # Incremental maintenance never silently dropped a cache.
    assert all(
        hot.index.is_cached(obj) for obj in range(inst.num_objects)
    )


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_keep_benefit_matches_scalar_reference(inst, seed):
    """Eq. 4 benefits agree between the hot (vectorized) and cold
    (scalar) paths for random waiting sets."""
    rng = np.random.default_rng(seed)
    cold = SystemState(inst)
    hot = cold.copy()
    for obj in range(inst.num_objects):
        hot.index.nearest_row(obj)
    for obj in range(inst.num_objects):
        n = int(rng.integers(0, inst.num_servers + 1))
        waiting = [
            int(j) for j in rng.choice(inst.num_servers, size=n, replace=False)
        ]
        for server in range(inst.num_servers):
            a = cold.index.keep_benefit(server, obj, waiting)
            b = hot.index.keep_benefit(server, obj, waiting)
            assert a == b, (server, obj, waiting, a, b)
