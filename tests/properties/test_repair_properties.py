"""Property-based tests: repair-engine invariants under random faults.

Random small instances (same generator shape as the schedule property
tests), random fault plans at random rates/seeds, and builders sampled
from the paper's set. The load-bearing invariants:

* every repaired execution terminates with the state at exactly ``X_new``;
* the applied event log re-validates as a plain RTSP schedule;
* execution is deterministic per ``(fault plan, pipeline, seed)``;
* zero-fault plans reproduce the plain simulated path exactly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_pipeline
from repro.model.instance import RtspInstance
from repro.model.state import SystemState
from repro.robust import FaultPlan, execute_with_repair
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel

PIPELINES = ["RDF", "GSDF", "GOLCF+H1+H2"]

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw) -> RtspInstance:
    m = draw(st.integers(2, 5))
    n = draw(st.integers(1, 5))
    sizes = np.array(
        draw(st.lists(st.integers(1, 4), min_size=n, max_size=n)), dtype=float
    )
    bits = st.lists(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        min_size=m,
        max_size=m,
    )
    x_old = np.array(draw(bits), dtype=np.int8)
    x_new = np.array(draw(bits), dtype=np.int8)
    loads_old = x_old.astype(float) @ sizes
    loads_new = x_new.astype(float) @ sizes
    slack = np.array(
        draw(st.lists(st.integers(0, 4), min_size=m, max_size=m)), dtype=float
    )
    capacities = np.maximum(loads_old, loads_new) + slack
    weights = draw(
        st.lists(st.integers(1, 9), min_size=m * m, max_size=m * m)
    )
    costs = np.array(weights, dtype=float).reshape(m, m)
    costs = (costs + costs.T) / 2.0
    np.fill_diagonal(costs, 0.0)
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new)


@settings(**COMMON)
@given(
    inst=instances(),
    rate=st.floats(0.0, 0.6),
    fault_seed=st.integers(0, 2**31 - 1),
    run_seed=st.integers(0, 2**31 - 1),
    pipeline=st.sampled_from(PIPELINES),
)
def test_repaired_execution_reaches_x_new(
    inst, rate, fault_seed, run_seed, pipeline
):
    plan = FaultPlan.generate(inst, rate, seed=fault_seed, horizon=50.0)
    report = execute_with_repair(
        inst, plan, pipeline=pipeline, rng=run_seed
    )
    assert report.completed
    assert report.revalidate(inst)
    state = SystemState(inst)
    for event in report.events:
        if event.applied:
            state.apply(event.action)
    assert state.matches(inst.x_new)


@settings(**COMMON)
@given(
    inst=instances(),
    rate=st.floats(0.05, 0.6),
    fault_seed=st.integers(0, 2**31 - 1),
    pipeline=st.sampled_from(PIPELINES),
)
def test_execution_is_deterministic(inst, rate, fault_seed, pipeline):
    plan = FaultPlan.generate(inst, rate, seed=fault_seed, horizon=50.0)
    a = execute_with_repair(inst, plan, pipeline=pipeline, rng=7)
    b = execute_with_repair(inst, plan, pipeline=pipeline, rng=7)
    assert a.events == b.events
    assert a.makespan == b.makespan
    assert a.total_cost == b.total_cost


@settings(**COMMON)
@given(
    inst=instances(),
    seed=st.integers(0, 2**31 - 1),
    pipeline=st.sampled_from(PIPELINES),
)
def test_zero_fault_plan_matches_plain_path(inst, seed, pipeline):
    report = execute_with_repair(inst, FaultPlan(), pipeline=pipeline, rng=seed)
    schedule = build_pipeline(pipeline).run(inst, rng=seed)
    baseline = simulate_parallel(
        schedule, inst, bandwidths_from_costs(inst.costs)
    )
    assert report.rounds == 0
    assert report.makespan == baseline.makespan
    assert report.total_cost == schedule.cost(inst)
    base_times = {t.position: (t.start, t.finish) for t in baseline.trace}
    fault_times = {e.position: (e.start, e.finish) for e in report.events}
    assert fault_times == base_times
