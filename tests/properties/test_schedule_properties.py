"""Property-based tests: builder/optimizer invariants on random instances.

Instances are drawn with arbitrary binary placements (including objects
with no old replica — forced dummy transfers — and empty servers),
integer sizes, and capacities between "minimal" and "minimal + slack".
The invariants checked are the load-bearing ones from the paper's
formulation:

* every builder emits a schedule that is valid w.r.t. ``(X_old, X_new)``;
* H1/H2 preserve validity and never increase the dummy-transfer count;
* OP1 preserves validity and never increases the implementation cost;
* every schedule's cost lies within [universal lower bound, worst-case
  upper bound].
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import universal_lower_bound, worst_case_upper_bound
from repro.core import get_builder, get_optimizer
from repro.model.instance import RtspInstance

BUILDERS = ["RDF", "GSDF", "AR", "GOLCF"]

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw) -> RtspInstance:
    m = draw(st.integers(2, 5))
    n = draw(st.integers(1, 5))
    sizes = np.array(
        draw(st.lists(st.integers(1, 4), min_size=n, max_size=n)), dtype=float
    )
    bits = st.lists(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        min_size=m,
        max_size=m,
    )
    x_old = np.array(draw(bits), dtype=np.int8)
    x_new = np.array(draw(bits), dtype=np.int8)
    loads_old = x_old.astype(float) @ sizes
    loads_new = x_new.astype(float) @ sizes
    slack = np.array(
        draw(st.lists(st.integers(0, 4), min_size=m, max_size=m)), dtype=float
    )
    capacities = np.maximum(loads_old, loads_new) + slack
    weights = draw(
        st.lists(st.integers(1, 9), min_size=m * m, max_size=m * m)
    )
    costs = np.array(weights, dtype=float).reshape(m, m)
    costs = (costs + costs.T) / 2.0
    np.fill_diagonal(costs, 0.0)
    return RtspInstance.create(sizes, capacities, costs, x_old, x_new)


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_every_builder_produces_valid_schedules(inst, seed):
    for name in BUILDERS:
        schedule = get_builder(name).build(inst, rng=seed)
        report = schedule.validate(inst)
        assert report.ok, f"{name}: {report.message} @ {report.position}"


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_h1_preserves_validity_and_dummy_monotonicity(inst, seed):
    base = get_builder("RDF").build(inst, rng=seed)
    out = get_optimizer("H1").optimize(inst, base)
    assert out.validate(inst).ok
    assert out.count_dummy_transfers(inst) <= base.count_dummy_transfers(inst)


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_h2_preserves_validity_and_dummy_monotonicity(inst, seed):
    base = get_builder("RDF").build(inst, rng=seed)
    out = get_optimizer("H2").optimize(inst, base)
    assert out.validate(inst).ok
    assert out.count_dummy_transfers(inst) <= base.count_dummy_transfers(inst)


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_op1_preserves_validity_and_cost_monotonicity(inst, seed):
    base = get_builder("AR").build(inst, rng=seed)
    out = get_optimizer("OP1").optimize(inst, base)
    assert out.validate(inst).ok
    assert out.cost(inst) <= base.cost(inst) + 1e-9


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_costs_bounded_by_analysis_bounds(inst, seed):
    lb = universal_lower_bound(inst)
    ub = worst_case_upper_bound(inst)
    for name in BUILDERS:
        cost = get_builder(name).build(inst, rng=seed).cost(inst)
        assert lb - 1e-9 <= cost <= ub + 1e-9


@settings(**COMMON)
@given(inst=instances(), seed=st.integers(0, 2**31 - 1))
def test_full_pipeline_end_state_is_x_new(inst, seed):
    from repro.core import build_pipeline

    schedule = build_pipeline("GOLCF+H1+H2+OP1").run(inst, rng=seed)
    final = schedule.replay(inst)
    assert final.matches(inst.x_new)
