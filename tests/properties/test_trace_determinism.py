"""Property tests: observability is deterministic and non-perturbing.

Two halves of the observability contract, asserted over random
instances:

* the **logical** trace stream (span names / ids / seq numbers /
  attributes, wall clocks excluded) is byte-identical across repeated
  runs of the same seeded pipeline — the tracer adds no nondeterminism
  of its own;
* running under :class:`~repro.obs.trace.NullTracer` (or under live
  instruments) leaves the produced schedule byte-identical to an
  unobserved run — instrumentation never changes algorithmic behavior.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import build_pipeline
from repro.obs import MetricsRegistry, NULL_TRACER, Tracer, observed, use_tracer
from tests.properties.test_schedule_properties import (
    BUILDERS,
    COMMON,
    instances,
)

PIPELINES = BUILDERS + ["GOLCF+H1+H2+OP1"]


def _actions(schedule):
    return [repr(a) for a in schedule.actions()]


def _traced_run(name, instance, seed):
    tracer = Tracer()
    registry = MetricsRegistry()
    with observed(tracer=tracer, metrics=registry):
        schedule, stats = build_pipeline(name).run_with_stats(
            instance, rng=seed
        )
    return schedule, stats, tracer, registry


@settings(**COMMON)
@given(instances(), st.sampled_from(PIPELINES), st.integers(0, 2**32 - 1))
def test_logical_stream_identical_across_runs(instance, name, seed):
    _, _, t1, r1 = _traced_run(name, instance, seed)
    _, _, t2, r2 = _traced_run(name, instance, seed)
    assert t1.logical_lines() == t2.logical_lines()
    assert r1.counter_values() == r2.counter_values()


@settings(**COMMON)
@given(instances(), st.sampled_from(PIPELINES), st.integers(0, 2**32 - 1))
def test_null_tracer_schedule_identical(instance, name, seed):
    plain = build_pipeline(name).run(instance, rng=seed)
    with use_tracer(NULL_TRACER):
        nulled = build_pipeline(name).run(instance, rng=seed)
    assert _actions(plain) == _actions(nulled)


@settings(**COMMON)
@given(instances(), st.sampled_from(PIPELINES), st.integers(0, 2**32 - 1))
def test_live_instruments_schedule_identical(instance, name, seed):
    plain = build_pipeline(name).run(instance, rng=seed)
    observed_schedule, stats, _, registry = _traced_run(name, instance, seed)
    assert _actions(plain) == _actions(observed_schedule)
    # Per-stage counter deltas must sum to the registry totals.
    totals = registry.counter_values()
    for counter in totals:
        assert (
            sum(s.counters.get(counter, 0) for s in stats) == totals[counter]
        )


@settings(**COMMON)
@given(instances(), st.sampled_from(BUILDERS), st.integers(0, 2**32 - 1))
def test_span_tree_well_formed(instance, name, seed):
    _, _, tracer, _ = _traced_run(name, instance, seed)
    ids = {s.span_id for s in tracer.spans}
    assert len(ids) == len(tracer.spans)
    seqs = sorted(
        x for s in tracer.spans for x in (s.seq_start, s.seq_end)
    )
    assert seqs == list(range(len(seqs)))  # every seq used exactly once
    for span in tracer.spans:
        assert span.parent_id is None or span.parent_id in ids
