"""Property-based tests for workload and network generators."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.placement import overlap_fraction
from repro.network.brite import barabasi_albert_topology
from repro.network.generators import waxman_topology
from repro.network.paths import all_pairs_shortest_paths
from repro.workloads.regular import regular_placement_pair

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(
    m=st.integers(3, 12),
    n=st.integers(3, 30),
    data=st.data(),
    seed=st.integers(0, 2**31 - 1),
)
def test_placement_pair_invariants(m, n, data, seed):
    r = data.draw(st.integers(1, max(1, m // 2)))
    overlap = data.draw(st.sampled_from([0.0, 0.25, 0.5]))
    x_old, x_new = regular_placement_pair(m, n, r, overlap=overlap, rng=seed)
    # exact column sums
    assert (x_old.sum(axis=0) == r).all()
    assert (x_new.sum(axis=0) == r).all()
    # near-equal row sums; with partial overlap the pins can make exact
    # balance unattainable on tiny instances, so only the paper's 0%
    # overlap setting guarantees the +-1 balance
    assert x_old.sum(axis=1).max() - x_old.sum(axis=1).min() <= 1
    if overlap == 0.0:
        rows = x_new.sum(axis=1)
        assert rows.max() - rows.min() <= 1
    # overlap close to requested (rounding to whole replicas)
    achieved = overlap_fraction(x_old, x_new)
    assert abs(achieved - overlap) <= 1.0 / (n * r) + 1e-9


@settings(**COMMON)
@given(n=st.integers(2, 40), seed=st.integers(0, 2**31 - 1))
def test_ba_tree_shape(n, seed):
    topo = barabasi_albert_topology(n, m=1, rng=seed)
    assert topo.is_tree()
    assert topo.num_links == n - 1


@settings(**COMMON)
@given(n=st.integers(3, 20), seed=st.integers(0, 2**31 - 1))
def test_shortest_path_metric_axioms(n, seed):
    topo = waxman_topology(n, alpha=0.7, beta=0.5, rng=seed)
    costs = all_pairs_shortest_paths(topo)
    assert np.allclose(costs, costs.T)
    assert np.allclose(np.diagonal(costs), 0.0)
    # triangle inequality (shortest-path closure)
    for k in range(n):
        via = costs[:, k, None] + costs[None, k, :]
        assert (costs <= via + 1e-9).all()
