"""Tests for deterministic fault-plan generation."""

import pytest

from repro.robust.faults import (
    FaultPlan,
    LinkSlowdown,
    ServerCrash,
    TransferFault,
)
from repro.util.errors import ConfigurationError
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=13)


class TestGenerate:
    def test_deterministic_per_seed(self, instance):
        a = FaultPlan.generate(instance, 0.2, seed=42, horizon=100.0)
        b = FaultPlan.generate(instance, 0.2, seed=42, horizon=100.0)
        assert a == b

    def test_different_seeds_differ(self, instance):
        a = FaultPlan.generate(instance, 0.2, seed=1, horizon=100.0)
        b = FaultPlan.generate(instance, 0.2, seed=2, horizon=100.0)
        assert a != b

    def test_zero_rate_is_empty(self, instance):
        plan = FaultPlan.generate(instance, 0.0, seed=5, horizon=100.0)
        assert plan.is_empty
        assert plan.num_hard_faults == 0

    def test_events_within_bounds(self, instance):
        plan = FaultPlan.generate(instance, 0.5, seed=3, horizon=50.0)
        for crash in plan.crashes:
            assert 0 <= crash.time < 50.0
            assert 0 <= crash.server < instance.num_servers
        for slow in plan.slowdowns:
            assert slow.factor >= 2.0
            assert slow.target != slow.source
            assert 0 <= slow.target < instance.num_servers
            assert 0 <= slow.source <= instance.dummy

    def test_rate_validation(self, instance):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(instance, 1.0, seed=0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(instance, -0.1, seed=0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(instance, 0.1, seed=0, horizon=0.0)


class TestPlanValueObject:
    def test_event_views_sorted(self):
        plan = FaultPlan(
            transfer_faults=(TransferFault(7), TransferFault(2)),
            crashes=(ServerCrash(9.0, 1), ServerCrash(3.0, 2)),
            slowdowns=(LinkSlowdown(5.0, 1, 2, 3.0),),
        )
        assert plan.fail_attempts() == {2, 7}
        assert plan.crash_events() == [(3.0, 2), (9.0, 1)]
        assert plan.slowdown_events() == [(5.0, 1, 2, 3.0)]
        assert plan.num_hard_faults == 4

    def test_invalid_events_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transfer_faults=(TransferFault(-1),))
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes=(ServerCrash(-1.0, 0),))
        with pytest.raises(ConfigurationError):
            FaultPlan(slowdowns=(LinkSlowdown(0.0, 0, 1, 0.5),))
