"""Tests for the online repair engine."""

import numpy as np
import pytest

from repro.analysis.metrics import repair_stats
from repro.core import build_pipeline
from repro.model.residual import is_residual_trivial, residual_instance
from repro.model.state import SystemState
from repro.robust.faults import FaultPlan, ServerCrash, TransferFault
from repro.robust.repair import RepairEngine, RepairPolicy, execute_with_repair
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.util.errors import (
    ConfigurationError,
    InvalidActionError,
    RepairExhaustedError,
)
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=13)


class TestFaultFreePath:
    def test_empty_plan_matches_baseline_exactly(self, instance):
        """Zero faults: cost, makespan and events match the plain path."""
        engine = RepairEngine("GOLCF+H1+H2")
        report = engine.execute(instance, FaultPlan(), rng=0)
        schedule = build_pipeline("GOLCF+H1+H2").run(instance, rng=0)
        baseline = simulate_parallel(
            schedule, instance, bandwidths_from_costs(instance.costs)
        )
        assert report.rounds == 0
        assert report.wasted_cost == 0.0
        assert report.total_cost == schedule.cost(instance)
        assert report.makespan == baseline.makespan
        assert report.fault_free_cost == report.total_cost
        assert [e.action for e in report.events] != []
        stats = repair_stats(report)
        assert stats.cost_overhead == 0.0
        assert stats.makespan_stretch == 1.0
        assert stats.dummy_fallbacks == 0


class TestRepairLoop:
    @pytest.mark.parametrize("rate", [0.05, 0.15, 0.3])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_reaches_x_new_under_faults(self, instance, rate, seed):
        plan = FaultPlan.generate(instance, rate, seed=seed, horizon=2e6)
        report = execute_with_repair(
            instance, plan, pipeline="GOLCF+H1+H2", rng=seed
        )
        assert report.completed
        assert report.revalidate(instance)
        # replaying the applied events really lands on X_new
        state = SystemState(instance)
        for event in report.events:
            if event.applied:
                state.apply(event.action)
        assert state.matches(instance.x_new)

    def test_deterministic_per_seed_and_pipeline(self, instance):
        plan = FaultPlan.generate(instance, 0.2, seed=11, horizon=2e6)
        a = execute_with_repair(instance, plan, rng=3)
        b = execute_with_repair(instance, plan, rng=3)
        assert a.events == b.events
        assert a.makespan == b.makespan
        assert a.total_cost == b.total_cost
        assert a.rounds == b.rounds

    def test_each_round_consumes_a_fault(self, instance):
        plan = FaultPlan.generate(instance, 0.2, seed=11, horizon=2e6)
        report = execute_with_repair(instance, plan, rng=3)
        assert 0 < report.rounds <= plan.num_hard_faults

    def test_transfer_fault_forces_retry(self, instance):
        plan = FaultPlan(transfer_faults=(TransferFault(0),))
        report = execute_with_repair(instance, plan, rng=0)
        assert report.rounds == 1
        assert report.wasted_cost > 0
        assert report.revalidate(instance)

    def test_crash_repairs_lost_replicas(self, instance):
        plan = FaultPlan(crashes=(ServerCrash(time=1.0, server=0),))
        report = execute_with_repair(instance, plan, rng=0)
        assert report.completed
        assert report.revalidate(instance)
        lost = [e for e in report.events if e.status == "lost"]
        assert lost, "crash at t=1 should catch server 0 still holding data"

    def test_post_completion_crash_still_repaired(self, instance):
        plan = FaultPlan(crashes=(ServerCrash(time=1e12, server=0),))
        report = execute_with_repair(instance, plan, rng=0)
        assert report.completed
        assert report.rounds == 1
        assert report.revalidate(instance)
        assert report.makespan >= 1e12

    def test_dummy_fallback_when_all_sources_crash(self):
        """Crashing every replicator of the objects forces dummy transfers."""
        # Two servers, one object held by S0 only; S1 must receive it.
        instance_local = __import__("repro").RtspInstance.create(
            sizes=[1.0],
            capacities=[1.0, 1.0],
            costs=np.array([[0.0, 1.0], [1.0, 0.0]]),
            x_old=np.array([[1], [0]], dtype=np.int8),
            x_new=np.array([[1], [1]], dtype=np.int8),
            dummy_constant=10.0,
        )
        plan = FaultPlan(crashes=(ServerCrash(time=0.0, server=0),))
        report = execute_with_repair(instance_local, plan, pipeline="GSDF", rng=0)
        assert report.completed
        assert report.revalidate(instance_local)
        assert report.dummy_transfers >= 1
        stats = repair_stats(report)
        assert stats.dummy_fallbacks >= 1

    def test_exhaustion_raises(self, instance):
        # Crashes always fire (transfer faults can be consumed by aborts),
        # so two of them need two repair rounds — one more than allowed.
        plan = FaultPlan(
            crashes=(ServerCrash(time=0.0, server=0), ServerCrash(time=1.0, server=1))
        )
        engine = RepairEngine(
            "GOLCF+H1+H2", policy=RepairPolicy(max_rounds=1)
        )
        with pytest.raises(RepairExhaustedError):
            engine.execute(instance, plan, rng=0)

    def test_backoff_delays_clock(self, instance):
        plan = FaultPlan(transfer_faults=(TransferFault(0),))
        quick = execute_with_repair(instance, plan, rng=0)
        slow = RepairEngine(
            "GOLCF+H1+H2", policy=RepairPolicy(backoff_base=100.0)
        ).execute(instance, plan, rng=0)
        assert slow.makespan >= quick.makespan + 100.0


class TestResidual:
    def test_residual_instance_extraction(self, instance):
        state = SystemState(instance)
        schedule = build_pipeline("GSDF").run(instance, rng=0)
        for idx in range(len(schedule) // 2):
            state.apply(schedule[idx])
        residual = residual_instance(instance, state.placement())
        assert np.array_equal(residual.x_old, state.placement())
        assert np.array_equal(residual.x_new, instance.x_new)
        remainder = build_pipeline("GSDF").run(residual, rng=1)
        assert remainder.is_valid(residual)

    def test_residual_shape_check(self, instance):
        with pytest.raises(ConfigurationError):
            residual_instance(instance, np.zeros((2, 2), dtype=np.int8))

    def test_trivial_residual(self, instance):
        residual = residual_instance(instance, instance.x_new)
        assert is_residual_trivial(residual)
        empty = build_pipeline("GSDF").run(residual, rng=0)
        assert len(empty) == 0

    def test_pipeline_replan_valid_against_midflight_state(self, instance):
        state = SystemState(instance)
        schedule = build_pipeline("GOLCF").run(instance, rng=0)
        for idx in range(len(schedule) // 3):
            state.apply(schedule[idx])
        pipeline = build_pipeline("GOLCF+H1+H2")
        remainder = pipeline.replan(instance, state.placement(), rng=2)
        for action in remainder:
            state.apply(action)
        assert state.matches(instance.x_new)

    def test_repair_round_with_trivial_residual_skips_the_pipeline(self):
        """A crash that loses nothing must not re-run the builders.

        The drained server holds no replica at ``X_new``, so a crash
        firing after completion leaves the placement equal to ``X_new``;
        ``Pipeline.replan`` must short-circuit instead of invoking the
        pipeline on the trivial residual."""
        from repro.workloads.maintenance import drain_instance

        base = paper_instance(replicas=2, num_servers=8, num_objects=20, rng=3)
        drained = 2
        inst = drain_instance(base, [drained], rng=0)
        assert not inst.x_new[drained].any()

        pipeline = build_pipeline("GOLCF+H1")
        original_run = pipeline.run

        def guarded_run(instance, rng=None):
            assert not is_residual_trivial(instance), (
                "repair round planned a trivial residual"
            )
            return original_run(instance, rng=rng)

        pipeline.run = guarded_run
        plan = FaultPlan(crashes=(ServerCrash(time=1e12, server=drained),))
        report = RepairEngine(pipeline).execute(inst, plan, rng=0)
        assert report.completed
        assert report.replans == 1
        assert report.revalidate(inst)


class TestCrashState:
    def test_crash_server_returns_replayable_deletes(self, instance):
        state = SystemState(instance)
        before = state.placement()
        lost = state.crash_server(3)
        assert [d.server for d in lost] == [3] * len(lost)
        assert sorted(d.obj for d in lost) == [d.obj for d in lost]
        replay = SystemState(instance, placement=before)
        for delete in lost:
            replay.apply(delete)
        assert replay.matches(state.placement())

    def test_crash_frees_storage(self, instance):
        state = SystemState(instance)
        free_before = state.free_space(3)
        state.crash_server(3)
        assert state.free_space(3) >= free_before
        assert state.free_space(3) == pytest.approx(
            float(instance.capacities[3])
        )

    def test_dummy_cannot_crash(self, instance):
        state = SystemState(instance)
        with pytest.raises(InvalidActionError):
            state.crash_server(instance.dummy)
        with pytest.raises(InvalidActionError):
            state.crash_server(-1)
