"""Shared fixtures for the serve test suite."""

from __future__ import annotations

import pytest

from repro.model.instance import RtspInstance
from repro.serve import PlanningService, ServeConfig, ServerHandle
from repro.workloads import paper_instance


@pytest.fixture(scope="module")
def small_instance() -> RtspInstance:
    """A 10x30 paper-shaped instance (fast to plan, non-trivial)."""
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=0)


@pytest.fixture(scope="module")
def other_instance() -> RtspInstance:
    """A second instance with a different topology."""
    return paper_instance(replicas=2, num_servers=8, num_objects=20, rng=5)


@pytest.fixture
def service():
    """A fresh two-worker service, shut down after the test."""
    with PlanningService(ServeConfig(workers=2, max_pending=16)) as svc:
        yield svc


@pytest.fixture
def server():
    """A live loopback HTTP server, stopped after the test."""
    with ServerHandle.start(config=ServeConfig(workers=2)) as handle:
        yield handle
