"""Topology hashing, cost-matrix store and plan-cache behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.cache import (
    PlanCache,
    TopologyStore,
    instance_fingerprint,
    topology_hash,
)


class TestTopologyHash:
    def test_deterministic_and_dtype_canonical(self, small_instance):
        costs = small_instance.costs
        assert topology_hash(costs) == topology_hash(costs.copy())
        # float32 input normalises to the float64 hash when values agree
        assert topology_hash(costs) == topology_hash(
            costs.astype(np.float32).astype(np.float64)
        )
        assert topology_hash(costs).startswith("sha256:")

    def test_differs_on_any_entry(self, small_instance):
        perturbed = small_instance.costs.copy()
        perturbed[0, 1] += 1.0
        assert topology_hash(small_instance.costs) != topology_hash(perturbed)

    def test_fingerprint_separates_topology_collisions(
        self, small_instance
    ):
        """Same costs + different placements: topology hashes collide
        (that is the reuse), fingerprints must not."""
        from repro.model.instance import RtspInstance

        x_old = small_instance.x_old.copy()
        sibling = RtspInstance.create(
            sizes=small_instance.sizes,
            capacities=small_instance.capacities,
            costs=small_instance.costs,
            x_old=x_old,
            x_new=x_old.copy(),  # no-op transition, same topology
        )
        assert topology_hash(sibling.costs) == topology_hash(
            small_instance.costs
        )
        assert instance_fingerprint(sibling) != instance_fingerprint(
            small_instance
        )


class TestTopologyStore:
    def test_register_get_round_trip(self, small_instance):
        with TopologyStore(max_entries=4) as store:
            key, created = store.register(small_instance.costs)
            assert created
            again, created2 = store.register(small_instance.costs)
            assert again == key and not created2
            matrix = store.get(key)
            np.testing.assert_array_equal(matrix, small_instance.costs)
            assert store.stats()["hits"] == 1
            assert store.get("sha256:" + "0" * 64) is None
            assert store.stats()["misses"] == 1

    def test_lru_eviction(self):
        with TopologyStore(max_entries=2) as store:
            keys = []
            for n in (3, 4, 5):
                costs = np.zeros((n, n))
                costs += np.arange(n)
                np.fill_diagonal(costs, 0.0)
                key, _ = store.register(costs)
                keys.append(key)
            assert len(store) == 2
            assert keys[0] not in store  # oldest evicted
            assert keys[1] in store and keys[2] in store

    def test_forced_spill_and_close_unlinks(self, small_instance):
        store = TopologyStore(max_entries=2, spill=True)
        key, _ = store.register(small_instance.costs)
        assert store.stats()["spilled"] == 1
        matrix = store.get(key)
        np.testing.assert_array_equal(matrix, small_instance.costs)
        store.close()
        assert len(store) == 0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            TopologyStore(max_entries=0)


class TestCostMatrixStoreMatrixProperty:
    def test_matrix_property_spilled_and_in_ram(self, small_instance):
        from repro.shard.mmapcost import CostMatrixStore

        in_ram = CostMatrixStore.from_matrix(small_instance.costs, spill=False)
        np.testing.assert_array_equal(in_ram.matrix, small_instance.costs)
        with CostMatrixStore.from_matrix(
            small_instance.costs, spill=True
        ) as spilled:
            assert spilled.spilled
            np.testing.assert_array_equal(
                np.asarray(spilled.matrix), small_instance.costs
            )


class TestPlanCache:
    def test_hit_returns_fresh_copies(self):
        cache = PlanCache(max_entries=4)
        key = PlanCache.key("sha256:f", "GOLCF", 0, None)
        assert cache.get(key) is None
        cache.put(key, {"cost": 1.0, "schedule": {"actions": [["D", 0, 1]]}})
        first = cache.get(key)
        first["cost"] = 999.0  # corrupting the copy must not leak back
        second = cache.get(key)
        assert second["cost"] == 1.0
        assert cache.stats() == {"entries": 1, "hits": 2, "misses": 1}

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        for seed in range(3):
            cache.put(PlanCache.key("f", "GOLCF", seed, None), {"seed": seed})
        assert len(cache) == 2
        assert cache.get(PlanCache.key("f", "GOLCF", 0, None)) is None
        assert cache.get(PlanCache.key("f", "GOLCF", 2, None)) == {"seed": 2}

    def test_key_separates_pipeline_seed_shards(self):
        keys = {
            PlanCache.key("f", "GOLCF", 0, None),
            PlanCache.key("f", "GOLCF", 1, None),
            PlanCache.key("f", "GOLCF+H1", 0, None),
            PlanCache.key("f", "GOLCF", 0, 2),
            PlanCache.key("g", "GOLCF", 0, None),
        }
        assert len(keys) == 5

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)
