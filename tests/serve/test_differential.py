"""Acceptance criterion: served schedules are byte-identical to
``build_pipeline(spec).run(instance, rng=seed)`` for the same
(instance, pipeline, seed) — cold, cached, sharded, and over real HTTP.
"""

from __future__ import annotations

import pytest

from repro.core import build_pipeline
from repro.io import schedule_to_dict
from repro.serve import ServeClient
from repro.serve.schemas import PLAN_REQUEST_FORMAT, canonical_json

PIPELINES = ["GOLCF", "GOLCF+H1", "GMC+H1+H2", "AR+H1+H2+OP1", "RDF+H1"]
SEEDS = [0, 7]


def library_bytes(instance, pipeline, seed):
    schedule = build_pipeline(pipeline).run(instance, rng=seed)
    return canonical_json(schedule_to_dict(schedule))


class TestServiceByteIdentity:
    @pytest.mark.parametrize("pipeline", PIPELINES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_served_equals_library(
        self, service, small_instance, pipeline, seed
    ):
        from repro.io import instance_to_dict

        status, payload = service.plan(
            {
                "format": PLAN_REQUEST_FORMAT,
                "pipeline": pipeline,
                "seed": seed,
                "mode": "sync",
                "instance": instance_to_dict(small_instance),
            }
        )
        assert status == 200
        assert canonical_json(payload["schedule"]) == library_bytes(
            small_instance, pipeline, seed
        )

    def test_cached_replay_stays_identical(self, service, small_instance):
        from repro.io import instance_to_dict

        payload = {
            "format": PLAN_REQUEST_FORMAT,
            "pipeline": "GOLCF+H1+H2+OP1",
            "seed": 3,
            "mode": "sync",
            "instance": instance_to_dict(small_instance),
        }
        expected = library_bytes(small_instance, "GOLCF+H1+H2+OP1", 3)
        _, cold = service.plan(payload)
        _, warm = service.plan(payload)
        assert cold["cache_hit"] is False and warm["cache_hit"] is True
        assert canonical_json(cold["schedule"]) == expected
        assert canonical_json(warm["schedule"]) == expected

    def test_sharded_service_plan_identical(self, service, small_instance):
        """shards=N must not change the bytes (plan_sharded contract)."""
        from repro.io import instance_to_dict

        expected = library_bytes(small_instance, "GOLCF+H1", 2)
        for shards in (1, 2, 3):
            status, payload = service.plan(
                {
                    "format": PLAN_REQUEST_FORMAT,
                    "pipeline": "GOLCF+H1",
                    "seed": 2,
                    "mode": "sync",
                    "shards": shards,
                    "instance": instance_to_dict(small_instance),
                }
            )
            assert status == 200
            assert canonical_json(payload["schedule"]) == expected, (
                f"shards={shards} diverged from the direct plan"
            )

    def test_delta_replan_identical(self, service, small_instance):
        """A delta against the cached topology plans the same bytes as
        shipping the full instance."""
        from repro.io import instance_to_dict
        from repro.serve.cache import topology_hash

        _, full = service.plan(
            {
                "format": PLAN_REQUEST_FORMAT,
                "pipeline": "GOLCF+H1",
                "seed": 5,
                "mode": "sync",
                "instance": instance_to_dict(small_instance),
            }
        )
        status, via_delta = service.plan(
            {
                "format": PLAN_REQUEST_FORMAT,
                "pipeline": "GOLCF+H1",
                "seed": 5,
                "mode": "sync",
                "delta": {
                    "topology": topology_hash(small_instance.costs),
                    "sizes": small_instance.sizes.tolist(),
                    "capacities": small_instance.capacities.tolist(),
                    "x_old": small_instance.x_old.tolist(),
                    "x_new": small_instance.x_new.tolist(),
                },
            }
        )
        assert status == 200
        assert canonical_json(via_delta["schedule"]) == canonical_json(
            full["schedule"]
        )
        assert canonical_json(via_delta["schedule"]) == library_bytes(
            small_instance, "GOLCF+H1", 5
        )


class TestHttpByteIdentity:
    @pytest.mark.parametrize("pipeline", ["GOLCF+H1", "GSDF+H1+H2"])
    def test_over_real_http(self, server, other_instance, pipeline):
        client = ServeClient(server.url, timeout=30.0)
        status, payload = client.plan(
            instance=other_instance, pipeline=pipeline, seed=4
        )
        assert status == 200
        assert canonical_json(payload["schedule"]) == library_bytes(
            other_instance, pipeline, 4
        )

    def test_async_result_identical(self, server, other_instance):
        import time

        client = ServeClient(server.url, timeout=30.0)
        status, accepted = client.plan(
            instance=other_instance, pipeline="GOLCF+H1", seed=6, mode="async"
        )
        assert status == 202
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            _, view = client.job(accepted["id"])
            if view["state"] == "done":
                break
        else:
            raise AssertionError("async job never completed")
        assert canonical_json(view["result"]["schedule"]) == library_bytes(
            other_instance, "GOLCF+H1", 6
        )
