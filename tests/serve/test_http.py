"""Loopback HTTP tests: routing, transport errors, polling, cancel."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeClient
from repro.serve.schemas import (
    ERROR_FORMAT,
    HEALTH_FORMAT,
    JOB_FORMAT,
    PLAN_RESPONSE_FORMAT,
    REPAIR_RESPONSE_FORMAT,
    VALIDATE_RESPONSE_FORMAT,
    check_response_format,
)

PIPELINE = "GOLCF+H1"


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout=30.0)


def poll_until_done(client, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = client.job(job_id)
        assert status == 200
        if payload["state"] in ("done", "failed", "cancelled", "timeout"):
            return payload
    raise AssertionError(f"{job_id} never reached a terminal state")


class TestRoutes:
    def test_healthz(self, client):
        status, payload = client.healthz()
        assert status == 200
        check_response_format(payload, HEALTH_FORMAT)

    def test_plan_sync(self, client, small_instance):
        status, payload = client.plan(
            instance=small_instance, pipeline=PIPELINE, seed=1
        )
        assert status == 200
        check_response_format(payload, PLAN_RESPONSE_FORMAT)

    def test_validate(self, client, small_instance):
        from repro.core import build_pipeline
        from repro.io import schedule_to_dict

        schedule = build_pipeline(PIPELINE).run(small_instance, rng=0)
        status, payload = client.validate(
            small_instance, schedule_to_dict(schedule), strict=True
        )
        assert status == 200
        check_response_format(payload, VALIDATE_RESPONSE_FORMAT)
        assert payload["ok"] is True

    def test_repair(self, client, small_instance):
        status, payload = client.repair(
            small_instance,
            {
                "format": "rtsp-fault-plan/1",
                "transfer_faults": [1],
                "crashes": [],
                "slowdowns": [],
            },
            pipeline=PIPELINE,
        )
        assert status == 200
        check_response_format(payload, REPAIR_RESPONSE_FORMAT)
        assert payload["completed"] is True

    def test_metrics_exposition_parses(self, client, small_instance):
        client.plan(instance=small_instance, pipeline=PIPELINE)
        status, text = client.metrics()
        assert status == 200
        assert isinstance(text, str) and "# TYPE" in text
        parsed = client.metrics_parsed()
        assert parsed["counters"]["rtsp_serve_requests_plan"] >= 1.0


class TestAsyncOverHttp:
    def test_async_job_lifecycle(self, client, small_instance):
        status, accepted = client.plan(
            instance=small_instance, pipeline=PIPELINE, seed=9, mode="async"
        )
        assert status == 202
        check_response_format(accepted, JOB_FORMAT)
        final = poll_until_done(client, accepted["id"])
        assert final["state"] == "done"
        check_response_format(final["result"], PLAN_RESPONSE_FORMAT)

    def test_since_cursor_over_http(self, client, small_instance):
        _, accepted = client.plan(
            instance=small_instance, pipeline=PIPELINE, seed=10, mode="async"
        )
        final = poll_until_done(client, accepted["id"])
        status, page = client.job(accepted["id"], since=final["next_seq"])
        assert status == 200
        assert page["events"] == []
        assert page["next_seq"] == final["next_seq"]

    def test_cancel_done_job_409(self, client, small_instance):
        _, accepted = client.plan(
            instance=small_instance, pipeline=PIPELINE, seed=11, mode="async"
        )
        poll_until_done(client, accepted["id"])
        status, payload = client.cancel(accepted["id"])
        assert status == 409
        assert payload["cancel_accepted"] is False

    def test_unknown_job_404(self, client):
        status, payload = client.job("job-999999")
        assert status == 404
        check_response_format(payload, ERROR_FORMAT)
        status, payload = client.cancel("job-999999")
        assert status == 404


class TestTransportErrors:
    def test_unknown_route_404(self, client):
        status, payload = client.request("GET", "/v2/everything")
        assert status == 404
        check_response_format(payload, ERROR_FORMAT)

    def test_post_to_get_route_405(self, client):
        status, payload = client.request("POST", "/healthz", {})
        assert status == 405
        assert payload["error"] == "method-not-allowed"

    def test_delete_non_job_route_404(self, client):
        status, payload = client.request("DELETE", "/v1/plan")
        assert status == 404

    def test_bad_json_body_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/plan",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=10.0) as resp:
                status, body = resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            status, body = exc.code, exc.read()
        assert status == 400
        assert json.loads(body)["error"] == "bad-json"

    def test_oversized_body_413(self, small_instance):
        from repro.serve import PlanningService, ServeConfig, ServerHandle

        service = PlanningService(ServeConfig(workers=1, max_body_bytes=64))
        with ServerHandle.start(service=service) as handle:
            client = ServeClient(handle.url, timeout=10.0)
            status, payload = client.plan(
                instance=small_instance, pipeline=PIPELINE
            )
            assert status == 413
            assert payload["error"] == "payload-too-large"

    def test_malformed_request_400(self, client):
        status, payload = client.plan_raw({"format": "rtsp-plan-request/9"})
        assert status == 400
        check_response_format(payload, ERROR_FORMAT)

    def test_bad_since_param_400(self, client):
        status, payload = client.request("GET", "/v1/jobs/job-000001?since=x")
        assert status == 400
        assert payload["error"] == "bad-request"


class TestKeepAlive:
    def test_many_requests_one_client(self, client, small_instance):
        """The handler sets Content-Length on every response, so a
        keep-alive client can issue many sequential requests."""
        for seed in range(5):
            status, payload = client.plan(
                instance=small_instance, pipeline=PIPELINE, seed=seed
            )
            assert status == 200
        status, health = client.healthz()
        assert status == 200
        assert health["jobs"]["done"] >= 5
