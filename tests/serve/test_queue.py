"""Job-queue edge cases: concurrency, cancellation, timeout, capacity."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    TIMEOUT,
    JobCancelled,
    JobNotFound,
    JobQueue,
    JobTimeout,
    QueueFull,
)


class Blocker:
    """A job body that parks until released, checking in on demand."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, ctx):
        self.entered.set()
        while not self.release.wait(0.005):
            ctx.check()
        ctx.check()
        return "released"


class TestBasics:
    def test_submit_runs_and_returns_result(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit(lambda ctx: 41 + 1)
            assert job.wait(5.0)
            assert job.state == DONE
            assert job.result == 42
            names = [e["name"] for e in job.events_since()]
            assert names[0] == "job.submitted"
            assert names[-1] == "job.done"

    def test_failure_is_captured_not_raised(self):
        with JobQueue(workers=1) as queue:
            def boom(ctx):
                raise ValueError("planned failure")

            job = queue.submit(boom)
            assert job.wait(5.0)
            assert job.state == FAILED
            assert isinstance(job.error, ValueError)
            snapshot = job.snapshot()
            assert snapshot["error"]["type"] == "ValueError"
            # The worker survived: the queue still runs jobs.
            assert queue.submit(lambda ctx: "ok").wait(5.0)

    def test_lookup_unknown_job(self):
        with JobQueue(workers=1) as queue:
            with pytest.raises(JobNotFound):
                queue.get("job-999999")

    def test_sequential_ids(self):
        with JobQueue(workers=1) as queue:
            first = queue.submit(lambda ctx: None)
            second = queue.submit(lambda ctx: None)
            assert first.id == "job-000001"
            assert second.id == "job-000002"


class TestConcurrency:
    def test_concurrent_submits_all_complete(self):
        """Many threads submitting at once: every job runs exactly once."""
        results = []
        lock = threading.Lock()

        def make(value):
            def fn(ctx):
                with lock:
                    results.append(value)
                return value

            return fn

        with JobQueue(workers=4, max_pending=256) as queue:
            jobs = []
            submitters = []

            def submit_batch(base):
                for offset in range(25):
                    jobs.append(queue.submit(make(base + offset)))

            for base in (0, 100, 200, 300):
                thread = threading.Thread(target=submit_batch, args=(base,))
                submitters.append(thread)
                thread.start()
            for thread in submitters:
                thread.join()
            assert len(jobs) == 100
            for job in jobs:
                assert job.wait(10.0), f"{job.id} never finished"
                assert job.state == DONE
        assert sorted(results) == sorted(
            base + offset for base in (0, 100, 200, 300) for offset in range(25)
        )

    def test_worker_bound_limits_parallelism(self):
        """With one worker, a second job cannot start until the first ends."""
        first, second = Blocker(), Blocker()
        with JobQueue(workers=1) as queue:
            job1 = queue.submit(first)
            job2 = queue.submit(second)
            assert first.entered.wait(5.0)
            time.sleep(0.02)
            assert job2.state == PENDING
            assert not second.entered.is_set()
            first.release.set()
            assert job1.wait(5.0) and job1.state == DONE
            assert second.entered.wait(5.0)
            second.release.set()
            assert job2.wait(5.0) and job2.state == DONE


class TestCancellation:
    def test_cancel_pending_job_never_runs(self):
        blocker = Blocker()
        with JobQueue(workers=1) as queue:
            running = queue.submit(blocker)
            queued = queue.submit(lambda ctx: "should not run")
            assert blocker.entered.wait(5.0)
            assert queue.cancel(queued.id) is True
            assert queued.state == CANCELLED  # immediate, no worker involved
            blocker.release.set()
            assert running.wait(5.0)
            time.sleep(0.02)
            assert queued.state == CANCELLED
            assert queued.result is None

    def test_cancel_mid_plan_interrupts_at_checkpoint(self):
        blocker = Blocker()
        with JobQueue(workers=1) as queue:
            job = queue.submit(blocker)
            assert blocker.entered.wait(5.0)
            assert job.state == RUNNING
            assert queue.cancel(job.id) is True
            # the blocker polls ctx.check(), which now raises JobCancelled
            assert job.wait(5.0)
            assert job.state == CANCELLED
            assert isinstance(job.error, JobCancelled)
            names = [e["name"] for e in job.events_since()]
            assert "job.cancel_requested" in names
            assert names[-1] == "job.cancelled"

    def test_cancel_finished_job_is_refused(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit(lambda ctx: "done")
            assert job.wait(5.0)
            assert queue.cancel(job.id) is False
            assert job.state == DONE
            assert job.result == "done"

    def test_shutdown_cancels_pending(self):
        blocker = Blocker()
        queue = JobQueue(workers=1)
        running = queue.submit(blocker)
        queued = queue.submit(lambda ctx: "never")
        assert blocker.entered.wait(5.0)
        # shut down while the first job still occupies the only worker:
        # the queued job must be cancelled without ever running
        queue.shutdown(wait=False)
        assert queued.state == CANCELLED
        blocker.release.set()
        assert running.wait(5.0)
        assert running.state == DONE
        queue.shutdown(wait=True)

    def test_submit_after_shutdown_rejected(self):
        queue = JobQueue(workers=1)
        queue.shutdown()
        with pytest.raises(QueueFull):
            queue.submit(lambda ctx: None)


class TestTimeout:
    def test_running_job_times_out_at_checkpoint(self):
        blocker = Blocker()
        with JobQueue(workers=1) as queue:
            job = queue.submit(blocker, timeout_seconds=0.05)
            assert blocker.entered.wait(5.0)
            # never released: the 50 ms deadline fires inside ctx.check()
            assert job.wait(5.0)
            assert job.state == TIMEOUT
            assert isinstance(job.error, JobTimeout)

    def test_pending_job_expires_without_running(self):
        blocker = Blocker()
        entered = threading.Event()

        def must_not_run(ctx):
            entered.set()

        with JobQueue(workers=1) as queue:
            running = queue.submit(blocker)
            queued = queue.submit(must_not_run, timeout_seconds=0.02)
            assert blocker.entered.wait(5.0)
            time.sleep(0.05)  # let the queued job's deadline lapse
            blocker.release.set()
            assert running.wait(5.0)
            assert queued.wait(5.0)
            assert queued.state == TIMEOUT
            assert not entered.is_set()

    def test_job_without_timeout_runs_long(self):
        blocker = Blocker()
        with JobQueue(workers=1) as queue:
            job = queue.submit(blocker)  # no deadline
            assert blocker.entered.wait(5.0)
            time.sleep(0.05)
            assert job.state == RUNNING
            blocker.release.set()
            assert job.wait(5.0)
            assert job.state == DONE


class TestCapacity:
    def test_queue_full_raises(self):
        blocker = Blocker()
        with JobQueue(workers=1, max_pending=2) as queue:
            queue.submit(blocker)
            assert blocker.entered.wait(5.0)
            queue.submit(lambda ctx: 1)
            queue.submit(lambda ctx: 2)
            with pytest.raises(QueueFull):
                queue.submit(lambda ctx: 3)
            blocker.release.set()

    def test_history_pruning_keeps_live_jobs(self):
        with JobQueue(workers=1, max_pending=64, max_history=5) as queue:
            jobs = [queue.submit(lambda ctx: None) for _ in range(12)]
            for job in jobs:
                assert job.wait(5.0)
            # pruning happens at submit time: one more submission sweeps
            # the (now all-terminal) backlog down to the history bound
            trigger = queue.submit(lambda ctx: None)
            assert trigger.wait(5.0)
            assert sum(queue.counts().values()) <= 6
            # the most recent jobs are still addressable
            assert queue.get(jobs[-1].id).state == DONE
            with pytest.raises(JobNotFound):
                queue.get(jobs[0].id)


class TestProgressEvents:
    def test_events_since_cursor(self):
        with JobQueue(workers=1) as queue:
            def fn(ctx):
                ctx.emit("step", n=1)
                ctx.emit("step", n=2)
                return "ok"

            job = queue.submit(fn)
            assert job.wait(5.0)
            everything = job.events_since(0)
            assert [e["name"] for e in everything] == [
                "job.submitted",
                "job.started",
                "step",
                "step",
                "job.done",
            ]
            cursor = everything[2]["seq"]
            tail = job.events_since(cursor)
            assert [e["name"] for e in tail] == ["step", "step", "job.done"]

    def test_snapshot_shape(self):
        from repro.serve.schemas import JOB_FORMAT, check_response_format

        with JobQueue(workers=1) as queue:
            job = queue.submit(lambda ctx: {"answer": 42})
            assert job.wait(5.0)
            snapshot = job.snapshot()
            check_response_format(snapshot, JOB_FORMAT)
            assert snapshot["result"] == {"answer": 42}
            assert snapshot["next_seq"] == snapshot["events"][-1]["seq"] + 1
