"""Round-trip and strictness tests for the serve wire schemas."""

from __future__ import annotations

import pytest

from repro.io import instance_to_dict, schedule_to_dict
from repro.core import build_pipeline
from repro.serve.schemas import (
    BATCH_REQUEST_FORMAT,
    PLAN_REQUEST_FORMAT,
    PLAN_RESPONSE_FORMAT,
    VALIDATE_REQUEST_FORMAT,
    REPAIR_REQUEST_FORMAT,
    PlacementDelta,
    SchemaError,
    batch_request_from_dict,
    canonical_json,
    check_response_format,
    error_payload,
    plan_request_from_dict,
    plan_request_to_dict,
    repair_request_from_dict,
    repair_request_to_dict,
    validate_request_from_dict,
    validate_request_to_dict,
)


def plan_payload(small_instance, **over):
    payload = {
        "format": PLAN_REQUEST_FORMAT,
        "pipeline": "GOLCF+H1",
        "seed": 3,
        "mode": "sync",
        "instance": instance_to_dict(small_instance),
    }
    payload.update(over)
    return payload


class TestPlanRequest:
    def test_round_trip(self, small_instance):
        original = plan_payload(
            small_instance, shards=2, validate="strict", timeout_seconds=5.0
        )
        request = plan_request_from_dict(original)
        assert request.pipeline == "GOLCF+H1"
        assert request.seed == 3
        assert request.shards == 2
        assert request.validate == "strict"
        assert request.timeout_seconds == 5.0
        back = plan_request_to_dict(request)
        # The embedded instance re-serialises identically, so the wire
        # form survives a full parse/serialise cycle byte-for-byte.
        assert canonical_json(back) == canonical_json(original)

    def test_delta_round_trip(self, small_instance):
        delta = {
            "topology": "sha256:" + "0" * 64,
            "sizes": small_instance.sizes.tolist(),
            "capacities": small_instance.capacities.tolist(),
            "x_old": small_instance.x_old.tolist(),
            "x_new": small_instance.x_new.tolist(),
        }
        payload = {
            "format": PLAN_REQUEST_FORMAT,
            "pipeline": "GOLCF",
            "seed": 0,
            "mode": "sync",
            "delta": delta,
        }
        request = plan_request_from_dict(payload)
        assert request.instance is None
        assert isinstance(request.delta, PlacementDelta)
        back = plan_request_to_dict(request)
        assert canonical_json(back) == canonical_json(payload)

    def test_defaults(self, small_instance):
        request = plan_request_from_dict(
            {
                "format": PLAN_REQUEST_FORMAT,
                "instance": instance_to_dict(small_instance),
            }
        )
        assert request.pipeline == "GOLCF+H1+H2+OP1"
        assert request.seed == 0
        assert request.mode == "sync"
        assert request.shards is None
        assert request.validate is None

    @pytest.mark.parametrize(
        "mutation",
        [
            {"format": "rtsp-plan-request/2"},
            {"format": None},
            {"mode": "eventually"},
            {"seed": "zero"},
            {"seed": True},
            {"shards": 0},
            {"validate": "paranoid"},
            {"timeout_seconds": -1},
            {"timeout_seconds": "fast"},
            {"pipeline": ""},
            {"surprise": 1},
        ],
    )
    def test_rejects_bad_fields(self, small_instance, mutation):
        payload = plan_payload(small_instance)
        payload.update(mutation)
        with pytest.raises(SchemaError):
            plan_request_from_dict(payload)

    def test_rejects_both_instance_and_delta(self, small_instance):
        payload = plan_payload(small_instance)
        payload["delta"] = {
            "topology": "sha256:x",
            "sizes": [1.0],
            "capacities": [1.0],
            "x_old": [[1]],
            "x_new": [[1]],
        }
        with pytest.raises(SchemaError, match="exactly one"):
            plan_request_from_dict(payload)

    def test_rejects_neither_instance_nor_delta(self):
        with pytest.raises(SchemaError, match="exactly one"):
            plan_request_from_dict({"format": PLAN_REQUEST_FORMAT})

    def test_rejects_corrupt_instance(self, small_instance):
        payload = plan_payload(small_instance)
        payload["instance"] = {"format": "rtsp-instance/1", "sizes": [1]}
        with pytest.raises(SchemaError, match="instance"):
            plan_request_from_dict(payload)

    def test_rejects_non_object(self):
        with pytest.raises(SchemaError):
            plan_request_from_dict(["not", "an", "object"])

    @pytest.mark.parametrize(
        "mutation",
        [
            {"sizes": []},
            {"sizes": ["big"]},
            {"x_old": [[2]]},
            {"x_old": [[1], [0, 1]]},
            {"topology": ""},
            {"extra": 1},
        ],
    )
    def test_delta_strictness(self, small_instance, mutation):
        delta = {
            "topology": "sha256:abc",
            "sizes": [1.0],
            "capacities": [2.0],
            "x_old": [[1]],
            "x_new": [[1]],
        }
        delta.update(mutation)
        with pytest.raises(SchemaError):
            PlacementDelta.from_dict(delta)


class TestBatchRequest:
    def test_round_trip(self, small_instance):
        batch = {
            "format": BATCH_REQUEST_FORMAT,
            "requests": [plan_payload(small_instance, seed=s) for s in (0, 1)],
        }
        requests = batch_request_from_dict(batch)
        assert [r.seed for r in requests] == [0, 1]

    def test_one_bad_entry_rejects_batch(self, small_instance):
        batch = {
            "format": BATCH_REQUEST_FORMAT,
            "requests": [
                plan_payload(small_instance),
                {"format": PLAN_REQUEST_FORMAT},
            ],
        }
        with pytest.raises(SchemaError, match=r"requests\[1\]"):
            batch_request_from_dict(batch)

    def test_rejects_async_entries(self, small_instance):
        batch = {
            "format": BATCH_REQUEST_FORMAT,
            "requests": [plan_payload(small_instance, mode="async")],
        }
        with pytest.raises(SchemaError, match="sync"):
            batch_request_from_dict(batch)

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            batch_request_from_dict(
                {"format": BATCH_REQUEST_FORMAT, "requests": []}
            )


class TestValidateAndRepairRequests:
    def test_validate_round_trip(self, small_instance):
        schedule = build_pipeline("GOLCF").run(small_instance, rng=0)
        payload = {
            "format": VALIDATE_REQUEST_FORMAT,
            "instance": instance_to_dict(small_instance),
            "schedule": schedule_to_dict(schedule),
            "strict": True,
        }
        request = validate_request_from_dict(payload)
        assert request.strict is True
        assert canonical_json(validate_request_to_dict(request)) == (
            canonical_json(payload)
        )

    def test_validate_rejects_non_bool_strict(self, small_instance):
        payload = {
            "format": VALIDATE_REQUEST_FORMAT,
            "instance": instance_to_dict(small_instance),
            "schedule": {"format": "rtsp-schedule/1", "actions": []},
            "strict": "yes",
        }
        with pytest.raises(SchemaError, match="strict"):
            validate_request_from_dict(payload)

    def test_repair_round_trip(self, small_instance):
        payload = {
            "format": REPAIR_REQUEST_FORMAT,
            "instance": instance_to_dict(small_instance),
            "fault_plan": {"format": "rtsp-fault-plan/1"},
            "pipeline": "GOLCF+H1",
            "seed": 2,
            "validate": "basic",
        }
        request = repair_request_from_dict(payload)
        assert request.pipeline == "GOLCF+H1"
        assert canonical_json(repair_request_to_dict(request)) == (
            canonical_json(payload)
        )

    def test_repair_rejects_unknown_keys(self, small_instance):
        payload = {
            "format": REPAIR_REQUEST_FORMAT,
            "instance": instance_to_dict(small_instance),
            "fault_plan": {},
            "rate": 0.5,
        }
        with pytest.raises(SchemaError, match="unknown keys"):
            repair_request_from_dict(payload)


class TestResponseChecking:
    def test_error_payload_shape(self):
        payload = error_payload(404, "unknown-job", "no such job")
        checked = check_response_format(payload, "rtsp-error/1")
        assert checked["status"] == 404

    def test_missing_keys_listed(self):
        with pytest.raises(SchemaError, match="missing keys"):
            check_response_format(
                {"format": PLAN_RESPONSE_FORMAT, "job_id": "x"},
                PLAN_RESPONSE_FORMAT,
            )

    def test_wrong_format_rejected(self):
        with pytest.raises(SchemaError, match="expected format"):
            check_response_format(
                {"format": "rtsp-error/1"}, PLAN_RESPONSE_FORMAT
            )

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == canonical_json(
            {"a": [1, 2], "b": 1}
        )
