"""PlanningService endpoint behaviour (no sockets involved)."""

from __future__ import annotations

import time

import pytest

from repro.core import build_pipeline
from repro.io import instance_to_dict, schedule_to_dict
from repro.serve import ServeConfig, PlanningService
from repro.serve.cache import topology_hash
from repro.serve.schemas import (
    BATCH_REQUEST_FORMAT,
    BATCH_RESPONSE_FORMAT,
    ERROR_FORMAT,
    HEALTH_FORMAT,
    JOB_FORMAT,
    PLAN_REQUEST_FORMAT,
    PLAN_RESPONSE_FORMAT,
    REPAIR_REQUEST_FORMAT,
    REPAIR_RESPONSE_FORMAT,
    VALIDATE_REQUEST_FORMAT,
    VALIDATE_RESPONSE_FORMAT,
    check_response_format,
)

PIPELINE = "GOLCF+H1"


def plan_payload(instance, **over):
    payload = {
        "format": PLAN_REQUEST_FORMAT,
        "pipeline": PIPELINE,
        "seed": 3,
        "mode": "sync",
        "instance": instance_to_dict(instance),
    }
    payload.update(over)
    return payload


def wait_terminal(service, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = service.job(job_id)
        assert status == 200
        if payload["state"] in ("done", "failed", "cancelled", "timeout"):
            return payload
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never reached a terminal state")


class TestPlanSync:
    def test_plan_returns_valid_response(self, service, small_instance):
        status, payload = service.plan(plan_payload(small_instance))
        assert status == 200
        check_response_format(payload, PLAN_RESPONSE_FORMAT)
        assert payload["pipeline"] == PIPELINE
        assert payload["seed"] == 3
        assert payload["cache_hit"] is False
        assert payload["topology"] == topology_hash(small_instance.costs)
        assert payload["num_actions"] == len(payload["schedule"]["actions"])

    def test_replay_hits_cache(self, service, small_instance):
        _, cold = service.plan(plan_payload(small_instance))
        status, warm = service.plan(plan_payload(small_instance))
        assert status == 200
        assert warm["cache_hit"] is True
        assert warm["schedule"] == cold["schedule"]
        assert warm["cost"] == cold["cost"]

    def test_cache_misses_across_seed_and_pipeline(
        self, service, small_instance
    ):
        service.plan(plan_payload(small_instance))
        _, other_seed = service.plan(plan_payload(small_instance, seed=4))
        assert other_seed["cache_hit"] is False
        _, other_pipe = service.plan(
            plan_payload(small_instance, pipeline="GOLCF")
        )
        assert other_pipe["cache_hit"] is False

    def test_topology_collision_does_not_cross_contaminate(
        self, service, small_instance
    ):
        """Two instances sharing a cost matrix share the topology entry
        but must not share plan-cache entries."""
        from repro.model.instance import RtspInstance

        sibling = RtspInstance.create(
            sizes=small_instance.sizes,
            capacities=small_instance.capacities,
            costs=small_instance.costs,
            x_old=small_instance.x_old,
            x_new=small_instance.x_old,  # different target placement
        )
        _, first = service.plan(plan_payload(small_instance))
        status, second = service.plan(plan_payload(sibling))
        assert status == 200
        assert second["cache_hit"] is False  # same topology, new fingerprint
        assert second["topology"] == first["topology"]
        assert second["fingerprint"] != first["fingerprint"]
        assert service.topologies.stats()["entries"] == 1

    def test_sharded_plan_matches_direct(self, service, small_instance):
        _, direct = service.plan(plan_payload(small_instance))
        status, sharded = service.plan(plan_payload(small_instance, shards=2))
        assert status == 200
        assert sharded["shards"] == 2
        assert sharded["cache_hit"] is False  # shards is part of the key
        assert sharded["schedule"] == direct["schedule"]

    def test_inline_validation_modes(self, service, small_instance):
        for mode in ("basic", "strict"):
            status, payload = service.plan(
                plan_payload(small_instance, seed=7, validate=mode)
            )
            assert status == 200, payload


class TestPlanDelta:
    def test_delta_replans_against_cached_matrix(
        self, service, small_instance
    ):
        _, full = service.plan(plan_payload(small_instance))
        delta = {
            "topology": full["topology"],
            "sizes": small_instance.sizes.tolist(),
            "capacities": small_instance.capacities.tolist(),
            "x_old": small_instance.x_old.tolist(),
            "x_new": small_instance.x_new.tolist(),
        }
        status, replanned = service.plan(
            {
                "format": PLAN_REQUEST_FORMAT,
                "pipeline": PIPELINE,
                "seed": 3,
                "mode": "sync",
                "delta": delta,
            }
        )
        assert status == 200
        # identical placement data -> identical fingerprint -> cache hit
        assert replanned["cache_hit"] is True
        assert replanned["schedule"] == full["schedule"]

    def test_unknown_topology_404(self, service, small_instance):
        status, payload = service.plan(
            {
                "format": PLAN_REQUEST_FORMAT,
                "mode": "sync",
                "delta": {
                    "topology": "sha256:" + "0" * 64,
                    "sizes": small_instance.sizes.tolist(),
                    "capacities": small_instance.capacities.tolist(),
                    "x_old": small_instance.x_old.tolist(),
                    "x_new": small_instance.x_new.tolist(),
                },
            }
        )
        assert status == 404
        check_response_format(payload, ERROR_FORMAT)
        assert payload["error"] == "unknown-topology"


class TestPlanAsync:
    def test_async_plan_completes_via_polling(self, service, small_instance):
        status, accepted = service.plan(
            plan_payload(small_instance, mode="async")
        )
        assert status == 202
        check_response_format(accepted, JOB_FORMAT)
        final = wait_terminal(service, accepted["id"])
        assert final["state"] == "done"
        check_response_format(final["result"], PLAN_RESPONSE_FORMAT)
        names = [e["name"] for e in final["events"]]
        assert "plan.start" in names or "plan.cached" in names

    def test_event_cursor_pagination(self, service, small_instance):
        _, accepted = service.plan(plan_payload(small_instance, mode="async"))
        final = wait_terminal(service, accepted["id"])
        cursor = final["events"][1]["seq"]
        status, page = service.job(accepted["id"], since=cursor)
        assert status == 200
        assert all(e["seq"] >= cursor for e in page["events"])
        assert len(page["events"]) == len(final["events"]) - 1

    def test_cancel_unknown_job_404(self, service):
        status, payload = service.cancel_job("job-424242")
        assert status == 404
        assert payload["error"] == "unknown-job"

    def test_cancel_finished_job_409(self, service, small_instance):
        _, accepted = service.plan(plan_payload(small_instance, mode="async"))
        wait_terminal(service, accepted["id"])
        status, payload = service.cancel_job(accepted["id"])
        assert status == 409
        assert payload["cancel_accepted"] is False
        assert payload["state"] == "done"


class TestPlanErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            {"format": "nonsense"},
            {"format": PLAN_REQUEST_FORMAT},  # no instance/delta
            ["not", "a", "mapping"],
            {"format": PLAN_REQUEST_FORMAT, "instance": {"format": "x"}},
        ],
    )
    def test_malformed_requests_400(self, service, payload):
        status, body = service.plan(payload)
        assert status == 400
        check_response_format(body, ERROR_FORMAT)
        assert body["error"] == "bad-request"

    def test_unknown_pipeline_400(self, service, small_instance):
        status, body = service.plan(
            plan_payload(small_instance, pipeline="MAGIC+H9")
        )
        assert status == 400
        assert body["error"] == "bad-request"

    def test_error_counter_bumped(self, service):
        before = service.metrics.counter("serve.responses.4xx").value
        service.plan({"format": "nonsense"})
        assert service.metrics.counter("serve.responses.4xx").value == (
            before + 1
        )


class TestBatch:
    def test_all_entries_succeed(self, service, small_instance, other_instance):
        status, payload = service.plan(
            {
                "format": BATCH_REQUEST_FORMAT,
                "requests": [
                    plan_payload(small_instance, seed=0),
                    plan_payload(other_instance, seed=1),
                ],
            }
        )
        assert status == 200
        check_response_format(payload, BATCH_RESPONSE_FORMAT)
        assert [entry["status"] for entry in payload["responses"]] == [200, 200]
        seeds = [e["response"]["seed"] for e in payload["responses"]]
        assert seeds == [0, 1]

    def test_mixed_results_207(self, service, small_instance):
        status, payload = service.plan(
            {
                "format": BATCH_REQUEST_FORMAT,
                "requests": [
                    plan_payload(small_instance),
                    plan_payload(small_instance, pipeline="MAGIC"),
                ],
            }
        )
        assert status == 207
        statuses = [entry["status"] for entry in payload["responses"]]
        assert statuses == [200, 400]

    def test_unparseable_batch_400(self, service, small_instance):
        status, payload = service.plan(
            {
                "format": BATCH_REQUEST_FORMAT,
                "requests": [{"format": PLAN_REQUEST_FORMAT}],
            }
        )
        assert status == 400
        check_response_format(payload, ERROR_FORMAT)


class TestValidateEndpoint:
    def test_valid_schedule_passes_strict(self, service, small_instance):
        schedule = build_pipeline(PIPELINE).run(small_instance, rng=0)
        status, payload = service.validate(
            {
                "format": VALIDATE_REQUEST_FORMAT,
                "instance": instance_to_dict(small_instance),
                "schedule": schedule_to_dict(schedule),
                "strict": True,
            }
        )
        assert status == 200
        check_response_format(payload, VALIDATE_RESPONSE_FORMAT)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert payload["num_actions"] == len(schedule)

    def test_corrupted_schedule_reports_violation(
        self, service, small_instance
    ):
        schedule = build_pipeline(PIPELINE).run(small_instance, rng=0)
        data = schedule_to_dict(schedule)
        data["actions"] = data["actions"][1:]  # drop a prefix action
        status, payload = service.validate(
            {
                "format": VALIDATE_REQUEST_FORMAT,
                "instance": instance_to_dict(small_instance),
                "schedule": data,
                "strict": False,
            }
        )
        assert status == 200
        assert payload["ok"] is False
        assert payload["violations"]
        assert payload["violations"][0]["rule"] == "model-replay"

    def test_malformed_validate_400(self, service):
        status, payload = service.validate({"format": "rtsp-validate-request/9"})
        assert status == 400
        check_response_format(payload, ERROR_FORMAT)


class TestRepairEndpoint:
    def test_repair_round_trip(self, service, small_instance):
        status, payload = service.repair(
            {
                "format": REPAIR_REQUEST_FORMAT,
                "instance": instance_to_dict(small_instance),
                "fault_plan": {
                    "format": "rtsp-fault-plan/1",
                    "transfer_faults": [0, 3],
                    "crashes": [],
                    "slowdowns": [],
                },
                "pipeline": PIPELINE,
                "seed": 1,
                "validate": "basic",
            }
        )
        assert status == 200
        check_response_format(payload, REPAIR_RESPONSE_FORMAT)
        assert payload["completed"] is True
        assert payload["rounds"] >= 1
        assert payload["applied_schedule"]["actions"]

    def test_malformed_fault_plan_400(self, service, small_instance):
        status, payload = service.repair(
            {
                "format": REPAIR_REQUEST_FORMAT,
                "instance": instance_to_dict(small_instance),
                "fault_plan": {"format": "rtsp-fault-plan/1"},
            }
        )
        assert status == 400
        check_response_format(payload, ERROR_FORMAT)


class TestIntrospection:
    def test_healthz_counts_jobs_and_caches(self, service, small_instance):
        service.plan(plan_payload(small_instance))
        status, payload = service.healthz()
        assert status == 200
        check_response_format(payload, HEALTH_FORMAT)
        assert payload["status"] == "ok"
        assert payload["jobs"]["done"] >= 1
        assert payload["cache"]["topology"]["entries"] == 1
        assert payload["uptime_seconds"] > 0

    def test_metrics_exposition(self, service, small_instance):
        from repro.obs.export import parse_prometheus_text

        service.plan(plan_payload(small_instance))
        service.plan(plan_payload(small_instance))
        parsed = parse_prometheus_text(service.metrics_text())
        assert parsed["counters"]["rtsp_serve_requests_plan"] == 2.0
        assert parsed["counters"]["rtsp_serve_cache_plan_hits"] == 1.0
        assert parsed["histograms"]["rtsp_serve_plan_millis"]["count"] == 2


class TestDefaultTimeout:
    def test_service_level_timeout_applies(self, small_instance):
        config = ServeConfig(workers=1, default_timeout=0.0)
        with PlanningService(config) as service:
            status, payload = service.plan(plan_payload(small_instance))
            assert status == 504
            assert payload["error"] == "timeout"
