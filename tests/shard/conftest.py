"""Shared fixtures for the sharding tests."""

import pytest

from repro.shard import compose_instances
from repro.workloads.regular import paper_instance


def small_blocks(count=3, num_servers=8, num_objects=20):
    """``count`` independent connected paper instances."""
    return [
        paper_instance(
            3, num_servers=num_servers, num_objects=num_objects, rng=block
        )
        for block in range(count)
    ]


@pytest.fixture(scope="module")
def blocks():
    return small_blocks()


@pytest.fixture(scope="module")
def composed(blocks):
    """A 3-component instance with known block structure."""
    return compose_instances(blocks)
