"""Memory-mapped cost-matrix store."""

import os

import numpy as np
import pytest

from repro.shard import CostMatrixStore


@pytest.fixture
def matrix():
    rng = np.random.default_rng(3)
    m = rng.uniform(1.0, 10.0, size=(12, 12))
    np.fill_diagonal(m, 0.0)
    return m


class TestSpillPolicy:
    def test_auto_keeps_small_matrices_in_ram(self, matrix):
        store = CostMatrixStore.from_matrix(matrix)
        assert not store.spilled

    def test_auto_spills_past_threshold(self, matrix):
        with CostMatrixStore.from_matrix(matrix, threshold_bytes=8) as store:
            assert store.spilled

    def test_forced_spill_and_forced_ram(self, matrix):
        with CostMatrixStore.from_matrix(matrix, spill=True) as store:
            assert store.spilled
        assert not CostMatrixStore.from_matrix(matrix, spill=False).spilled

    def test_bad_spill_value_rejected(self, matrix):
        with pytest.raises(ValueError):
            CostMatrixStore.from_matrix(matrix, spill="maybe")


class TestSlicing:
    def test_slice_matches_dense_submatrix(self, matrix):
        indices = [0, 3, 7, 11]
        expected = matrix[np.ix_(indices, indices)]
        for spill in (False, True):
            with CostMatrixStore.from_matrix(matrix, spill=spill) as store:
                got = store.slice(indices)
                assert got.dtype == np.float64
                assert np.array_equal(got, expected)

    def test_slice_is_a_private_copy(self, matrix):
        with CostMatrixStore.from_matrix(matrix, spill=True) as store:
            piece = store.slice([1, 2])
            piece[0, 0] = 999.0
            assert store.slice([1, 2])[0, 0] != 999.0


class TestLifecycle:
    def test_close_unlinks_backing_file(self, matrix):
        store = CostMatrixStore.from_matrix(matrix, spill=True)
        path = store._path
        assert path is not None and os.path.exists(path)
        store.close()
        assert not os.path.exists(path)
        store.close()  # idempotent

    def test_context_manager_cleans_up(self, matrix):
        with CostMatrixStore.from_matrix(matrix, spill=True) as store:
            path = store._path
        assert not os.path.exists(path)
