"""Cross-process observability linkage for sharded planning.

The acceptance criteria for the telemetry subsystem live here:

* schedules are byte-identical with events/metrics/tracing on or off,
  for any worker count;
* the event stream's logical lines are byte-identical across worker
  counts (events describe the *plan*, not the execution);
* worker-side span fragments adopted by the coordinator nest under the
  ``plan_sharded`` span, so a Chrome export of a ``workers > 1`` run
  shows every shard inside the coordinating span;
* plan-quality gauges land in the metrics registry;
* stitch-time invariant violations emit an event and dump the flight
  recorder ring before re-raising.
"""

import json

import pytest

from repro.core.pipeline import build_pipeline
from repro.exact.validate import InvalidScheduleError
from repro.obs import (
    EventStream,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    load_events,
    observed,
    validate_event_lines,
)
from repro.shard import plan_sharded

PIPELINE = "GOLCF+H1"
SEED = 7


@pytest.fixture(scope="module")
def pipeline():
    return build_pipeline(PIPELINE)


def observed_plan(composed, pipeline, workers, shards=3):
    """Plan under a full observability stack; return (plan, stack)."""
    tracer = Tracer()
    registry = MetricsRegistry()
    stream = EventStream()
    with observed(tracer=tracer, metrics=registry, events=stream):
        plan = plan_sharded(
            composed, pipeline, shards=shards, workers=workers, rng=SEED
        )
    return plan, tracer, registry, stream


class TestScheduleByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_observability_does_not_change_the_plan(
        self, composed, pipeline, workers
    ):
        bare = plan_sharded(
            composed, pipeline, shards=3, workers=workers, rng=SEED
        )
        watched, _, _, _ = observed_plan(composed, pipeline, workers)
        assert list(watched.schedule) == list(bare.schedule)
        assert watched.cost == bare.cost


class TestEventStream:
    def test_logical_lines_identical_across_worker_counts(
        self, composed, pipeline
    ):
        _, _, _, serial = observed_plan(composed, pipeline, workers=1)
        _, _, _, parallel = observed_plan(composed, pipeline, workers=2)
        assert serial.logical_lines() == parallel.logical_lines()
        assert validate_event_lines(serial.to_lines()) == []

    def test_lifecycle_events_present_in_order(self, composed, pipeline):
        _, _, _, stream = observed_plan(composed, pipeline, workers=2)
        names = [e.name for e in stream.events]
        assert names[0] == "plan.start"
        assert names[-1] == "plan.done"
        assert names.count("shard.part") == 3
        assert "plan.stitch" in names
        # shard completions arrive in canonical part order, not finish order
        parts = [e.attrs["part"] for e in stream.events
                 if e.name == "shard.part"]
        assert parts == [0, 1, 2]

    def test_plan_done_carries_quality_attrs(self, composed, pipeline):
        _, _, _, stream = observed_plan(composed, pipeline, workers=1)
        done = stream.events[-1]
        for key in ("cost", "cost_gap", "dummy_traffic_ratio",
                    "lpt_imbalance"):
            assert key in done.attrs, key


class TestSpanLinkage:
    def test_shard_spans_nest_under_plan_sharded(self, composed, pipeline):
        """Adopted worker fragments re-parent under the coordinator span."""
        _, tracer, _, _ = observed_plan(composed, pipeline, workers=2)
        by_id = {s.span_id: s for s in tracer.spans}

        def ancestors(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                yield span.name

        shard_spans = [s for s in tracer.spans if s.name == "shard.plan"]
        assert len(shard_spans) == 3
        for span in shard_spans:
            assert "plan_sharded" in ancestors(span)

    def test_logical_spans_identical_across_worker_counts(
        self, composed, pipeline
    ):
        def logical(tracer):
            records = [s.logical_record() for s in tracer.spans]
            for rec in records:
                rec["attrs"] = {
                    k: v for k, v in rec["attrs"].items() if k != "workers"
                }
            return json.dumps(records, sort_keys=True)

        _, serial, _, _ = observed_plan(composed, pipeline, workers=1)
        _, parallel, _, _ = observed_plan(composed, pipeline, workers=2)
        assert logical(serial) == logical(parallel)

    def test_chrome_export_uses_logical_clock_and_contains_shards(
        self, composed, pipeline, tmp_path
    ):
        _, tracer, _, _ = observed_plan(composed, pipeline, workers=2)
        path = tmp_path / "chrome.json"
        tracer.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["otherData"]["clock"] == "logical"
        events = doc["traceEvents"]
        root = next(e for e in events if e["name"] == "plan_sharded")
        shards = [e for e in events if e["name"] == "shard.plan"]
        assert len(shards) == 3
        for ev in shards:
            # logical containment: every shard interval sits inside root
            assert root["ts"] <= ev["ts"]
            assert ev["ts"] + ev["dur"] <= root["ts"] + root["dur"]


class TestQualityGauges:
    def test_quality_recorded_in_registry(self, composed, pipeline):
        _, _, registry, _ = observed_plan(composed, pipeline, workers=1)
        snap = registry.snapshot()
        gauges = snap["gauges"]
        assert gauges["plan.cost"]["value"] > 0
        assert gauges["plan.dummy_traffic_ratio"]["value"] >= 0.0
        assert gauges["plan.lpt_imbalance"]["value"] >= 1.0

    def test_quality_annotated_on_root_span(self, composed, pipeline):
        _, tracer, _, _ = observed_plan(composed, pipeline, workers=1)
        root = next(s for s in tracer.spans if s.name == "plan_sharded")
        assert "dummy_traffic_ratio" in root.attrs
        assert "lpt_imbalance" in root.attrs


class TestInvariantFailureTelemetry:
    def test_violation_emits_event_and_dumps_flight_ring(
        self, composed, pipeline, tmp_path, monkeypatch
    ):
        # Corrupt the stitch so the strict oracle rejects it.
        from repro.model.schedule import Schedule
        from repro.shard import planner as planner_mod

        original = Schedule.from_arrays.__func__

        def corrupt(cls, kinds, primary, objs, sources):
            if objs:
                objs = list(objs)
                objs[0] = max(objs) + 1  # dangling object id
            return original(cls, kinds, primary, objs, sources)

        monkeypatch.setattr(
            planner_mod.Schedule, "from_arrays", classmethod(corrupt)
        )

        dump = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(capacity=64, path=str(dump))
        stream = EventStream(recorder=recorder)
        with observed(events=stream):
            with pytest.raises(InvalidScheduleError):
                plan_sharded(
                    composed, pipeline, shards=2, workers=1, rng=SEED
                )
        violations = [e for e in stream.events
                      if e.name == "invariant.violation"]
        assert len(violations) == 1
        assert "index" in violations[0].attrs["error"]
        assert dump.exists()
        header, events = load_events(str(dump))
        assert header["meta"]["reason"] == "invariant violation"
        assert any(e.name == "invariant.violation" for e in events)
