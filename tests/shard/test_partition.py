"""Partitioners and bin packing."""

import numpy as np
import pytest

from repro.analysis import placement_components
from repro.shard import (
    component_slices,
    pack_parts,
    partition_by_object_family,
    partition_by_zone,
    partition_connected,
    resolve_partition,
)
from repro.shard.partition import Partition, ShardPart
from repro.util.errors import ConfigurationError


class TestPlacementComponents:
    def test_composed_blocks_are_recovered(self, blocks, composed):
        components = placement_components(composed)
        expected = [srv for srv, _ in component_slices(blocks)]
        assert components == expected

    def test_single_connected_instance(self, blocks):
        assert placement_components(blocks[0]) == [
            list(range(blocks[0].num_servers))
        ]


class TestPartitionConnected:
    def test_parts_cover_all_cells_once(self, composed):
        partition = partition_connected(composed)
        assert partition.exact
        assert partition.scheme == "components"
        seen_servers = [s for p in partition.parts for s in p.servers]
        assert sorted(seen_servers) == list(range(composed.num_servers))
        seen_objects = [k for p in partition.parts for k in p.objects]
        assert sorted(seen_objects) == list(range(composed.num_objects))

    def test_canonical_order_by_smallest_server(self, composed):
        partition = partition_connected(composed)
        firsts = [p.servers[0] for p in partition.parts]
        assert firsts == sorted(firsts)

    def test_weights_reflect_cell_work(self, composed):
        partition = partition_connected(composed)
        total = int(
            composed.outstanding().sum() + composed.superfluous().sum()
        )
        assert sum(p.weight for p in partition.parts) == total


class TestPartitionByZone:
    def test_block_aligned_zones_are_exact(self, blocks, composed):
        zones = []
        for label, block in enumerate(blocks):
            zones.extend([label] * block.num_servers)
        partition = partition_by_zone(composed, zones)
        assert partition.exact

    def test_component_cutting_zones_are_inexact(self, blocks, composed):
        zones = []
        for label, block in enumerate(blocks):
            zones.extend([label] * block.num_servers)
        zones[0] = "cut"  # split server 0 away from its component
        partition = partition_by_zone(composed, zones)
        assert not partition.exact

    def test_wrong_label_count_rejected(self, composed):
        with pytest.raises(ConfigurationError):
            partition_by_zone(composed, [0, 1])


class TestPartitionByObjectFamily:
    def test_integer_families_chunk_objects(self, blocks):
        inst = blocks[0]
        partition = partition_by_object_family(inst, 4)
        assert len(partition.parts) == 4
        assert not partition.exact
        seen = [k for p in partition.parts for k in p.objects]
        assert sorted(seen) == list(range(inst.num_objects))
        for part in partition.parts:
            assert part.servers == tuple(range(inst.num_servers))

    def test_capacity_split_is_sequential(self, blocks):
        inst = blocks[0]
        partition = partition_by_object_family(inst, 2)
        caps0 = np.asarray(partition.part_capacities(0))
        caps1 = np.asarray(partition.part_capacities(1))
        objs1 = list(partition.parts[1].objects)
        objs0 = list(partition.parts[0].objects)
        old_later = inst.x_old[:, objs1].astype(float) @ inst.sizes[objs1]
        new_earlier = inst.x_new[:, objs0].astype(float) @ inst.sizes[objs0]
        assert np.allclose(caps0, inst.capacities - old_later)
        assert np.allclose(caps1, inst.capacities - new_earlier)

    def test_bad_family_count_rejected(self, blocks):
        with pytest.raises(ConfigurationError):
            partition_by_object_family(blocks[0], 0)


class TestResolvePartition:
    def test_string_partition_and_callable_accepted(self, composed):
        by_name = resolve_partition(composed, "components")
        assert resolve_partition(composed, by_name) is by_name
        by_call = resolve_partition(composed, partition_connected)
        assert by_call.parts == by_name.parts

    def test_unknown_spec_rejected(self, composed):
        with pytest.raises(ConfigurationError):
            resolve_partition(composed, "magic")


class TestPackParts:
    def _partition(self, weights):
        parts = tuple(
            ShardPart(servers=(index,), objects=(index,), weight=weight)
            for index, weight in enumerate(weights)
        )
        return Partition(parts=parts, exact=True, scheme="test")

    def test_none_means_one_bin_per_part(self):
        assert pack_parts(self._partition([3, 1, 2]), None) == [[0], [1], [2]]

    def test_every_part_lands_exactly_once(self):
        partition = self._partition([5, 1, 4, 2, 8, 3])
        bins = pack_parts(partition, 3)
        assert len(bins) == 3
        assert sorted(i for b in bins for i in b) == list(range(6))

    def test_lpt_balances_loads(self):
        partition = self._partition([8, 7, 6, 5, 4, 3, 2, 1])
        bins = pack_parts(partition, 2)
        loads = [
            sum(partition.parts[i].weight for i in b) for b in bins
        ]
        assert max(loads) <= 19  # perfect split is 18/18

    def test_more_bins_than_parts_collapses(self):
        assert pack_parts(self._partition([1, 2]), 10) == [[0], [1]]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_parts(self._partition([1]), 0)
