"""Differential suite for sharded planning and stitching."""

import numpy as np
import pytest

from repro.core.pipeline import build_pipeline
from repro.exact.differential import DEFAULT_FAMILIES, family_instances
from repro.exact.validate import check_invariants
from repro.flat import flat_mode_override
from repro.model.instance import RtspInstance
from repro.model.schedule import Schedule
from repro.shard import (
    compose_instances,
    partition_by_object_family,
    partition_by_zone,
    partition_connected,
    plan_sharded,
)
from repro.shard.subinstance import extract_subinstance
from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed

PIPELINE = "GOLCF+H1"
SEED = 7


@pytest.fixture(scope="module")
def pipeline():
    return build_pipeline(PIPELINE)


@pytest.fixture(scope="module")
def reference(composed, pipeline):
    """The canonical stitched schedule, computed independently of
    plan_sharded's pool/bin machinery: plan each component sub-instance
    with its derived seed, in canonical part order, and concatenate."""
    partition = partition_connected(composed)
    kinds, primary, objs, sources = [], [], [], []
    for part in partition.parts:
        sub = extract_subinstance(composed, part)
        seed = derive_seed(SEED, "shard", part.key)
        schedule = pipeline.run(sub.instance, rng=seed)
        k, p, o, s = sub.globalize(schedule)
        kinds.extend(k)
        primary.extend(p)
        objs.extend(o)
        sources.extend(s)
    return Schedule.from_arrays(kinds, primary, objs, sources)


class TestStitchDifferential:
    @pytest.mark.parametrize("shards", [None, 1, 2, 4])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_byte_identical_for_every_shard_and_worker_count(
        self, composed, pipeline, reference, shards, workers
    ):
        plan = plan_sharded(
            composed, pipeline, shards=shards, workers=workers, rng=SEED
        )
        assert list(plan.schedule) == list(reference)

    def test_flat_core_stitches_identically(self, composed, pipeline):
        baseline = plan_sharded(composed, pipeline, shards=2, rng=SEED)
        with flat_mode_override("on"):
            flat = plan_sharded(
                composed, pipeline, shards=2, workers=2, rng=SEED
            )
        assert list(flat.schedule) == list(baseline.schedule)

    def test_single_part_matches_unsharded_planning(self, blocks, pipeline):
        instance = blocks[0]
        unsharded = pipeline.run(instance, rng=SEED)
        plan = plan_sharded(
            instance, pipeline, shards=4, workers=2, rng=SEED
        )
        assert len(plan.partition.parts) == 1
        assert list(plan.schedule) == list(unsharded)

    def test_stitched_schedule_passes_oracle_and_costs_agree(
        self, composed, pipeline
    ):
        plan = plan_sharded(composed, pipeline, shards=2, rng=SEED)
        assert plan.invariant_report is not None
        assert plan.invariant_report.ok
        assert plan.cost == pytest.approx(plan.schedule.cost(composed))
        assert plan.cross_shard_dummies == 0  # exact partition
        assert sum(s.num_actions for s in plan.stats) == plan.num_actions


class TestExactOracleFamilies:
    @pytest.mark.parametrize("family", DEFAULT_FAMILIES)
    def test_stitched_plans_stay_invariant_clean(self, family, pipeline):
        instances = family_instances(family, count=3)
        composed = compose_instances(instances)
        plan = plan_sharded(
            composed, pipeline, shards=2, workers=1, rng=SEED
        )
        report = check_invariants(composed, plan.schedule)
        assert report.ok, report.summary()
        assert plan.cost == pytest.approx(report.cost)


class TestInexactPartitions:
    def test_cut_zone_stitches_validly_with_dummy_surcharge(
        self, blocks, composed, pipeline
    ):
        zones = []
        for label, block in enumerate(blocks):
            zones.extend([label] * block.num_servers)
        half = blocks[0].num_servers // 2
        for server in range(half):
            zones[server] = "cut"
        partition = partition_by_zone(composed, zones)
        assert not partition.exact
        plan = plan_sharded(
            composed, pipeline, partitioner=partition, workers=2, rng=SEED
        )
        assert plan.invariant_report.ok
        assert plan.cross_shard_dummies > 0
        assert plan.dummy_transfers >= plan.cross_shard_dummies

    def test_object_families_plan_with_capacity_slack(self, blocks, pipeline):
        base = blocks[0]
        inst = RtspInstance.create(
            sizes=base.sizes,
            capacities=base.capacities * 2.0,
            costs=base.costs,
            x_old=base.x_old,
            x_new=base.x_new,
        )
        partition = partition_by_object_family(inst, 3)
        serial = plan_sharded(
            inst, pipeline, partitioner=partition, rng=SEED
        )
        packed = plan_sharded(
            inst, pipeline, partitioner=partition, shards=2, workers=2,
            rng=SEED,
        )
        assert list(serial.schedule) == list(packed.schedule)
        assert serial.invariant_report.ok


class TestArguments:
    def test_spec_string_builder_accepted(self, composed, reference):
        plan = plan_sharded(composed, PIPELINE, shards=2, rng=SEED)
        assert list(plan.schedule) == list(reference)

    def test_generator_rng_rejected_for_multipart(self, composed, pipeline):
        with pytest.raises(ConfigurationError, match="integer seed"):
            plan_sharded(
                composed, pipeline, rng=np.random.default_rng(0)
            )

    def test_bad_builder_rejected(self, composed):
        with pytest.raises(ConfigurationError, match="builder"):
            plan_sharded(composed, builder=42)

    def test_mmap_spill_does_not_change_plans(self, composed, pipeline):
        in_ram = plan_sharded(
            composed, pipeline, shards=2, rng=SEED, mmap_costs=False
        )
        spilled = plan_sharded(
            composed, pipeline, shards=2, workers=2, rng=SEED,
            mmap_costs=True,
        )
        assert list(in_ram.schedule) == list(spilled.schedule)

    def test_progress_reports_each_shard(self, composed, pipeline):
        lines = []
        plan = plan_sharded(
            composed, pipeline, shards=2, rng=SEED, progress=lines.append
        )
        assert len(lines) == len(plan.partition.parts)
        assert all("shard" in line for line in lines)
