"""The shared deterministic work queue."""

import multiprocessing

import pytest

from repro.obs.context import current_metrics, current_tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.shard.pool import WorkQueue, fork_available


def _square(context, task):
    return (context or 0) + task * task


def _observed_square(context, task):
    registry = current_metrics()
    registry.counter("tasks").inc()
    with current_tracer().span("task", n=task):
        pass
    return task * task


class TestRun:
    def test_results_in_input_order(self):
        tasks = [5, 3, 1, 4]
        assert WorkQueue().run(_square, tasks) == [25, 9, 1, 16]

    def test_context_threaded_to_every_task(self):
        assert WorkQueue().run(_square, [1, 2], context=100) == [101, 104]

    def test_empty_tasks(self):
        assert WorkQueue(workers=4).run(_square, []) == []

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_invariance(self, workers):
        serial = WorkQueue(workers=1).run(_square, list(range(7)))
        assert WorkQueue(workers=workers).run(_square, list(range(7))) == serial


class TestObservabilityMerge:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_fragments_merge_identically(self, workers):
        registry = MetricsRegistry()
        tracer = Tracer()
        WorkQueue(workers=workers).run(
            _observed_square,
            list(range(5)),
            metrics=registry,
            tracer=tracer,
        )
        assert registry.counter_values()["tasks"] == 5
        assert [s.attrs["n"] for s in tracer.spans] == list(range(5))

    def test_disabled_tracer_records_nothing(self):
        class Disabled:
            enabled = False
            spans = []

        registry = MetricsRegistry()
        WorkQueue(workers=1).run(
            _square, [1, 2], metrics=registry, tracer=Disabled()
        )
        assert Disabled.spans == []


class TestSerialFallback:
    def test_fork_available_on_posix(self):
        assert fork_available()

    def test_no_start_method_falls_back_loudly(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert not fork_available()
        lines = []
        queue = WorkQueue(workers=4, progress=lines.append)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = queue.run(_square, [1, 2, 3])
        assert results == [1, 4, 9]
        assert any("falling back to serial" in line for line in lines)

    def test_broken_context_falls_back_loudly(self, monkeypatch):
        def no_fork(method=None):
            raise ValueError("cannot find context for 'fork'")

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        assert not fork_available()
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            assert WorkQueue(workers=2).run(_square, [2, 3]) == [4, 9]
