"""Sub-instance extraction and schedule globalization."""

import numpy as np
import pytest

from repro.core.pipeline import build_pipeline
from repro.flat import flat_mode_override
from repro.model.actions import Delete, Transfer
from repro.model.schedule import KIND_DELETE, KIND_TRANSFER
from repro.shard import CostMatrixStore, partition_connected
from repro.shard.subinstance import extract_subinstance
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def first_part(composed):
    return partition_connected(composed).parts[0]


class TestExtract:
    def test_local_instance_matches_global_slices(self, composed, first_part):
        sub = extract_subinstance(composed, first_part)
        servers = np.asarray(first_part.servers)
        objects = np.asarray(first_part.objects)
        grid = np.ix_(servers, objects)
        assert np.array_equal(sub.instance.x_old, composed.x_old[grid])
        assert np.array_equal(sub.instance.x_new, composed.x_new[grid])
        assert np.array_equal(sub.instance.sizes, composed.sizes[objects])
        assert np.array_equal(
            sub.instance.capacities, composed.capacities[servers]
        )
        extended = list(first_part.servers) + [composed.dummy]
        grid = np.ix_(extended, extended)
        assert np.array_equal(sub.instance.costs, composed.costs[grid])

    def test_cost_store_slice_equals_direct(self, composed, first_part):
        direct = extract_subinstance(composed, first_part)
        with CostMatrixStore.from_matrix(composed.costs, spill=True) as store:
            stored = extract_subinstance(composed, first_part, cost_store=store)
        assert np.array_equal(direct.instance.costs, stored.instance.costs)

    def test_infeasible_capacity_override_reports_part(
        self, composed, first_part
    ):
        zero = tuple(0.0 for _ in range(composed.num_servers))
        with pytest.raises(ConfigurationError, match="infeasible"):
            extract_subinstance(composed, first_part, capacities=zero)


class TestGlobalize:
    def test_actions_map_back_to_global_indices(self, composed, first_part):
        sub = extract_subinstance(composed, first_part)
        schedule = build_pipeline("GOLCF+H1").run(sub.instance, rng=4)
        kinds, primary, objs, sources = sub.globalize(schedule)
        assert len(kinds) == len(schedule)
        for action, kind, target, obj, source in zip(
            schedule, kinds, primary, objs, sources
        ):
            if isinstance(action, Transfer):
                assert kind == KIND_TRANSFER
                assert target == first_part.servers[action.target]
                assert obj == first_part.objects[action.obj]
                expected = (
                    composed.dummy
                    if action.source == sub.instance.dummy
                    else first_part.servers[action.source]
                )
                assert source == expected
            else:
                assert isinstance(action, Delete)
                assert kind == KIND_DELETE
                assert target == first_part.servers[action.server]
                assert obj == first_part.objects[action.obj]
                assert source == 0

    def test_flat_schedule_globalizes_identically(self, composed, first_part):
        sub = extract_subinstance(composed, first_part)
        reference = build_pipeline("GOLCF+H1").run(sub.instance, rng=4)
        with flat_mode_override("on"):
            flat = build_pipeline("GOLCF+H1").run(sub.instance, rng=4)
        assert sub.globalize(flat) == sub.globalize(reference)
