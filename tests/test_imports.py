"""Collection-health smoke tests.

A missing module anywhere under :mod:`repro` used to kill pytest at
conftest collection (``import repro`` is the first thing the shared
fixtures do), turning one bad import into zero tests run. These checks
make such a regression fail as a single readable test instead.
"""

import importlib
import pkgutil

import pytest

import repro


def test_import_repro():
    assert repro.__version__


def test_all_public_names_resolve():
    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert not missing, f"repro.__all__ names that do not resolve: {missing}"


def test_star_import_from_core():
    namespace = {}
    exec("from repro.core import *", namespace)
    for name in ("get_builder", "build_pipeline", "GreedyObjectLowestCostFirst"):
        assert name in namespace


@pytest.mark.parametrize(
    "module",
    sorted(
        name
        for _, name, _ in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        )
        if not name.split(".")[-1].startswith("__")
    ),
)
def test_every_submodule_imports(module):
    importlib.import_module(module)


def test_paper_builders_available():
    assert set(repro.available_builders()) >= {
        "AR",
        "GMC",
        "GOLCF",
        "GSDF",
        "RDF",
    }
