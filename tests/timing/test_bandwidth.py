"""Tests for bandwidth models."""

import numpy as np
import pytest

from repro.timing.bandwidth import (
    bandwidths_from_costs,
    transfer_duration,
    uniform_bandwidths,
)
from repro.util.errors import ConfigurationError


class TestUniform:
    def test_shape_and_values(self):
        bw = uniform_bandwidths(3, rate=2.0)
        assert bw.shape == (4, 4)
        assert bw[0, 1] == 2.0
        assert bw[3, 0] == 0.2  # dummy tier 10x slower

    def test_custom_dummy_rate(self):
        bw = uniform_bandwidths(3, rate=2.0, dummy_rate=1.0)
        assert bw[3, 1] == 1.0

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(0)
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(3, rate=0.0)
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(3, dummy_rate=-1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_rate_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(3, rate=bad)
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(3, dummy_rate=bad)

    def test_default_dummy_rate_is_none(self):
        # dummy_rate defaults to None (rate / 10), not a bogus float
        bw = uniform_bandwidths(3, rate=10.0)
        assert bw[3, 0] == 1.0


class TestFromCosts:
    def test_inverse_relation(self):
        costs = np.array([[0.0, 2.0], [2.0, 0.0]])
        bw = bandwidths_from_costs(costs, scale=4.0)
        assert bw[0, 1] == 2.0
        assert np.isinf(bw[0, 0])

    def test_expensive_links_are_slow(self):
        costs = np.array([[0.0, 1.0, 8.0], [1.0, 0.0, 1.0], [8.0, 1.0, 0.0]])
        bw = bandwidths_from_costs(costs)
        assert bw[0, 2] < bw[0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(np.zeros((2, 3)))

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(np.zeros((2, 2)), scale=0.0)

    def test_zero_off_diagonal_cost_rejected(self):
        # A zero cost off the diagonal would mean infinite bandwidth
        # between two distinct servers — a configuration error, not a
        # silent division by zero.
        costs = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(costs)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_costs_rejected(self, bad):
        costs = np.array([[0.0, bad], [1.0, 0.0]])
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(costs)

    def test_non_finite_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(
                np.array([[0.0, 1.0], [1.0, 0.0]]), scale=float("nan")
            )


class TestTransferDuration:
    def test_formula(self):
        bw = uniform_bandwidths(2, rate=4.0)
        assert transfer_duration(bw, 8.0, 0, 1) == 2.0

    def test_infinite_bandwidth_is_instant(self):
        bw = uniform_bandwidths(2)
        assert transfer_duration(bw, 8.0, 0, 0) == 0.0

    def test_nan_bandwidth_rejected(self):
        bw = uniform_bandwidths(2)
        bw = bw.copy()
        bw[0, 1] = float("nan")
        with pytest.raises(ConfigurationError):
            transfer_duration(bw, 8.0, 0, 1)
