"""Tests for bandwidth models."""

import numpy as np
import pytest

from repro.timing.bandwidth import (
    bandwidths_from_costs,
    transfer_duration,
    uniform_bandwidths,
)
from repro.util.errors import ConfigurationError


class TestUniform:
    def test_shape_and_values(self):
        bw = uniform_bandwidths(3, rate=2.0)
        assert bw.shape == (4, 4)
        assert bw[0, 1] == 2.0
        assert bw[3, 0] == 0.2  # dummy tier 10x slower

    def test_custom_dummy_rate(self):
        bw = uniform_bandwidths(3, rate=2.0, dummy_rate=1.0)
        assert bw[3, 1] == 1.0

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(0)
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(3, rate=0.0)
        with pytest.raises(ConfigurationError):
            uniform_bandwidths(3, dummy_rate=-1.0)


class TestFromCosts:
    def test_inverse_relation(self):
        costs = np.array([[0.0, 2.0], [2.0, 0.0]])
        bw = bandwidths_from_costs(costs, scale=4.0)
        assert bw[0, 1] == 2.0
        assert np.isinf(bw[0, 0])

    def test_expensive_links_are_slow(self):
        costs = np.array([[0.0, 1.0, 8.0], [1.0, 0.0, 1.0], [8.0, 1.0, 0.0]])
        bw = bandwidths_from_costs(costs)
        assert bw[0, 2] < bw[0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(np.zeros((2, 3)))

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            bandwidths_from_costs(np.zeros((2, 2)), scale=0.0)


class TestTransferDuration:
    def test_formula(self):
        bw = uniform_bandwidths(2, rate=4.0)
        assert transfer_duration(bw, 8.0, 0, 1) == 2.0

    def test_infinite_bandwidth_is_instant(self):
        bw = uniform_bandwidths(2)
        assert transfer_duration(bw, 8.0, 0, 0) == 0.0
