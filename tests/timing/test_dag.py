"""Tests for the schedule dependency DAG."""

import networkx as nx
import numpy as np
import pytest

from repro.core import build_pipeline
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.timing.dag import build_dependency_dag, critical_path_length
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=8, num_objects=24, rng=11)


class TestDagStructure:
    def test_acyclic(self, instance):
        for spec in ("RDF", "GOLCF", "GOLCF+H1+H2+OP1"):
            schedule = build_pipeline(spec).run(instance, rng=0)
            dag = build_dependency_dag(schedule.actions(), instance)
            assert nx.is_directed_acyclic_graph(dag)

    def test_edges_point_forward(self, instance):
        schedule = build_pipeline("GOLCF").run(instance, rng=1)
        dag = build_dependency_dag(schedule.actions(), instance)
        assert all(u < v for u, v in dag.edges)

    def test_chain_dependency(self, tiny_instance):
        # transfer then the deletion of its source: deletion depends on it
        actions = [Transfer(2, 0, 0), Delete(0, 0)]
        dag = build_dependency_dag(actions, tiny_instance)
        assert dag.has_edge(0, 1)

    def test_created_source_dependency(self, tiny_instance):
        # second transfer reads the replica the first created
        actions = [Transfer(2, 0, 0), Delete(0, 0), Transfer(0, 0, 2)]
        dag = build_dependency_dag(actions, tiny_instance)
        assert dag.has_edge(0, 2)  # source created at 0
        assert dag.has_edge(1, 2)  # cell (0,0) deleted before re-created

    def test_independent_actions_unlinked(self, tiny_instance):
        # transfers to different servers from initial holders
        actions = [Transfer(2, 0, 0), Transfer(2, 1, 1)]
        # different targets? both target S2: space edge exists.
        dag = build_dependency_dag(actions, tiny_instance)
        assert dag.has_edge(0, 1)  # same target => conservative space edge
        actions = [Transfer(1, 0, 0), Transfer(2, 1, 1)]
        dag = build_dependency_dag(actions, tiny_instance)
        assert dag.number_of_edges() == 0

    def test_every_linearisation_is_valid(self, instance):
        """The conservative-DAG guarantee: random topological orders of
        the DAG replay validly."""
        schedule = build_pipeline("GOLCF+H1+H2").run(instance, rng=2)
        actions = schedule.actions()
        dag = build_dependency_dag(actions, instance)
        rng = np.random.default_rng(0)
        for _ in range(5):
            order = list(
                nx.lexicographical_topological_sort(
                    dag, key=lambda v: rng.random()
                )
            )
            candidate = Schedule([actions[idx] for idx in order])
            assert candidate.validate(instance).ok


class TestCriticalPath:
    def test_empty(self, tiny_instance):
        dag = build_dependency_dag([], tiny_instance)
        assert critical_path_length(dag, []) == 0.0

    def test_chain_sums(self, tiny_instance):
        actions = [Transfer(2, 0, 0), Delete(0, 0), Transfer(0, 0, 2)]
        dag = build_dependency_dag(actions, tiny_instance)
        assert critical_path_length(dag, [3.0, 0.0, 5.0]) == 8.0

    def test_parallel_max(self, tiny_instance):
        actions = [Transfer(1, 0, 0), Transfer(2, 1, 1)]
        dag = build_dependency_dag(actions, tiny_instance)
        assert critical_path_length(dag, [3.0, 5.0]) == 5.0
