"""Tests for the discrete-event schedule executor."""

import numpy as np
import pytest

from repro.core import build_pipeline
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.timing.bandwidth import bandwidths_from_costs, uniform_bandwidths
from repro.timing.deadline import makespan_by_pipeline, meets_deadline
from repro.timing.executor import sequential_makespan, simulate_parallel
from repro.util.errors import ConfigurationError
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=13)


@pytest.fixture(scope="module")
def schedule(instance):
    return build_pipeline("GOLCF+H1+H2+OP1").run(instance, rng=0)


@pytest.fixture(scope="module")
def bandwidths(instance):
    return bandwidths_from_costs(instance.costs)


class TestInvariants:
    def test_sandwich(self, instance, schedule, bandwidths):
        result = simulate_parallel(schedule, instance, bandwidths)
        assert result.critical_path <= result.makespan + 1e-9
        assert result.makespan <= result.sequential_time + 1e-9
        assert result.sequential_time == pytest.approx(
            sequential_makespan(schedule, instance, bandwidths)
        )

    def test_trace_is_valid_execution(self, instance, schedule, bandwidths):
        result = simulate_parallel(schedule, instance, bandwidths)
        order = sorted(result.trace, key=lambda t: (t.start, t.position))
        replayed = Schedule([t.action for t in order])
        assert replayed.validate(instance).ok

    def test_trace_covers_all_actions(self, instance, schedule, bandwidths):
        result = simulate_parallel(schedule, instance, bandwidths)
        assert len(result.trace) == len(schedule)
        assert {t.position for t in result.trace} == set(range(len(schedule)))

    def test_deletions_are_instant(self, instance, schedule, bandwidths):
        result = simulate_parallel(schedule, instance, bandwidths)
        for t in result.trace:
            if isinstance(t.action, Delete):
                assert t.duration == 0.0

    def test_more_slots_never_slower(self, instance, schedule, bandwidths):
        narrow = simulate_parallel(schedule, instance, bandwidths)
        wide = simulate_parallel(
            schedule, instance, bandwidths, out_slots=4, in_slots=4
        )
        assert wide.makespan <= narrow.makespan + 1e-9

    def test_slot_limits_respected(self, instance, schedule, bandwidths):
        result = simulate_parallel(schedule, instance, bandwidths)
        events = []
        for t in result.trace:
            if isinstance(t.action, Transfer) and t.duration > 0:
                events.append((t.start, 1, t.action))
                events.append((t.finish, -1, t.action))
        events.sort(key=lambda e: (e[0], e[1]))
        in_use = {}
        for _, delta, action in events:
            in_use[action.target] = in_use.get(action.target, 0) + delta
            assert in_use[action.target] <= 1

    def test_parallelism_achieved(self, instance, schedule, bandwidths):
        """A real schedule on 10 servers should overlap transfers."""
        result = simulate_parallel(schedule, instance, bandwidths)
        assert result.speedup > 1.2


class TestSmallScenarios:
    def test_single_transfer_duration(self, tiny_instance):
        bw = uniform_bandwidths(3, rate=0.5)
        schedule = Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        result = simulate_parallel(schedule, tiny_instance, bw)
        # size 1 at rate 0.5 => 2 time units
        assert result.makespan == pytest.approx(2.0)

    def test_independent_transfers_overlap(self, tiny_instance):
        bw = uniform_bandwidths(3, rate=1.0)
        schedule = Schedule(
            [Transfer(1, 0, 0), Transfer(2, 1, 1), Delete(0, 0)]
        )
        # hmm: schedule must end at X_new; use raw trace semantics only
        result = simulate_parallel(
            Schedule([Transfer(1, 0, 0), Transfer(2, 1, 1)]),
            tiny_instance,
            bw,
        )
        assert result.makespan == pytest.approx(1.0)  # both run at t=0

    def test_dependent_transfers_serialise(self, tiny_instance):
        bw = uniform_bandwidths(3, rate=1.0)
        schedule = Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        chained = Schedule(
            [Transfer(2, 0, 0), Delete(0, 0), Transfer(0, 0, 2), Delete(2, 0)]
        )
        short = simulate_parallel(schedule, tiny_instance, bw)
        long = simulate_parallel(chained, tiny_instance, bw)
        assert long.makespan == pytest.approx(2 * short.makespan)

    def test_bad_slots_rejected(self, tiny_instance):
        bw = uniform_bandwidths(3)
        with pytest.raises(ConfigurationError):
            simulate_parallel(Schedule(), tiny_instance, bw, out_slots=0)

    def test_empty_schedule(self, tiny_instance):
        bw = uniform_bandwidths(3)
        result = simulate_parallel(Schedule(), tiny_instance, bw)
        assert result.makespan == 0.0
        assert result.trace == []


class TestDeadline:
    def test_meets_its_own_makespan(self, instance, schedule, bandwidths):
        result = simulate_parallel(schedule, instance, bandwidths)
        assert meets_deadline(schedule, instance, result.makespan, bandwidths)
        assert not meets_deadline(
            schedule, instance, result.makespan * 0.5, bandwidths
        )

    def test_default_bandwidths(self, instance, schedule):
        assert meets_deadline(schedule, instance, float("inf"))

    def test_relative_tolerance(self, instance, schedule, bandwidths):
        # A deadline one float-ulp below the makespan is a rounding
        # artefact, not a miss: the relative tolerance must absorb it.
        result = simulate_parallel(schedule, instance, bandwidths)
        just_below = np.nextafter(result.makespan, 0.0)
        assert meets_deadline(schedule, instance, just_below, bandwidths)
        assert meets_deadline(
            schedule, instance, result.makespan * (1 - 1e-12), bandwidths
        )

    def test_makespan_by_pipeline(self, instance):
        results = makespan_by_pipeline(instance, ["RDF", "GOLCF+H1+H2+OP1"])
        assert set(results) == {"RDF", "GOLCF+H1+H2+OP1"}
        for res in results.values():
            assert res.makespan > 0
