"""Tests for the failure-aware discrete-event loop."""

import numpy as np
import pytest

from repro.core import build_pipeline
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.model.state import SystemState
from repro.timing.bandwidth import bandwidths_from_costs
from repro.timing.executor import simulate_parallel
from repro.timing.faulted import (
    STATUS_ABORTED,
    STATUS_FAILED,
    STATUS_LOST,
    STATUS_OK,
    simulate_with_faults,
)
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=10, num_objects=30, rng=13)


@pytest.fixture(scope="module")
def schedule(instance):
    return build_pipeline("GOLCF+H1+H2").run(instance, rng=0)


@pytest.fixture(scope="module")
def bandwidths(instance):
    return bandwidths_from_costs(instance.costs)


class TestFaultFreeEquivalence:
    def test_byte_identical_to_simulate_parallel(
        self, instance, schedule, bandwidths
    ):
        """With no faults, timings must match simulate_parallel exactly."""
        baseline = simulate_parallel(schedule, instance, bandwidths)
        state = SystemState(instance)
        result = simulate_with_faults(schedule, instance, bandwidths, state)
        assert result.completed
        assert result.failure is None
        assert result.wasted_cost == 0.0
        assert result.stop_time == baseline.makespan
        base_times = {t.position: (t.start, t.finish) for t in baseline.trace}
        fault_times = {e.position: (e.start, e.finish) for e in result.trace}
        assert fault_times == base_times

    def test_state_reaches_x_new(self, instance, schedule, bandwidths):
        state = SystemState(instance)
        simulate_with_faults(schedule, instance, bandwidths, state)
        assert state.matches(instance.x_new)

    def test_slot_constraints_respected(self, instance, schedule, bandwidths):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule, instance, bandwidths, state, out_slots=2, in_slots=2
        )
        events = []
        for e in result.trace:
            if isinstance(e.action, Transfer) and e.finish > e.start:
                events.append((e.start, 1, e.action))
                events.append((e.finish, 0, e.action))
        in_use = {}
        for _, kind, action in sorted(events, key=lambda t: (t[0], t[1])):
            delta = 1 if kind == 1 else -1
            in_use[action.target] = in_use.get(action.target, 0) + delta
            assert in_use[action.target] <= 2


class TestTransferFailures:
    def test_failed_attempt_halts_and_preserves_state(
        self, instance, schedule, bandwidths
    ):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule, instance, bandwidths, state, fail_attempts={0}
        )
        assert not result.completed
        assert result.failed_attempt == 0
        assert "failed" in result.failure
        failed = [e for e in result.trace if e.status == STATUS_FAILED]
        assert len(failed) == 1
        # the failed transfer produced no replica
        action = failed[0].action
        assert not state.holds(action.target, action.obj)
        assert result.wasted_cost > 0

    def test_attempt_offset_shifts_indexing(
        self, instance, schedule, bandwidths
    ):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule,
            instance,
            bandwidths,
            state,
            fail_attempts={3},
            attempt_offset=3,
        )
        assert not result.completed
        assert result.failed_attempt == 3
        ok_transfers = [
            e
            for e in result.trace
            if e.status == STATUS_OK and isinstance(e.action, Transfer)
        ]
        # attempt 3 with offset 3 is the very first start; admission may
        # start several transfers concurrently, so only same-or-later
        # finishers should have completed — none strictly required, but
        # the failing one must be among the earliest starters.
        assert failed_start(result) <= min(
            (e.start for e in ok_transfers), default=failed_start(result)
        )

    def test_applied_prefix_replays(self, instance, schedule, bandwidths):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule, instance, bandwidths, state, fail_attempts={5}
        )
        replay = SystemState(instance)
        for event in result.trace:
            if event.applied:
                replay.apply(event.action)
        assert replay.matches(state.placement())


def failed_start(result):
    return next(e.start for e in result.trace if e.status == STATUS_FAILED)


class TestCrashes:
    def test_crash_loses_replicas_and_halts(
        self, instance, schedule, bandwidths
    ):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule, instance, bandwidths, state, crashes=[(0.0, 0)]
        )
        assert not result.completed
        assert result.crash_fired == (0.0, 0)
        assert "crashed" in result.failure
        lost = [e for e in result.trace if e.status == STATUS_LOST]
        assert all(isinstance(e.action, Delete) for e in lost)
        assert all(e.action.server == 0 for e in lost)
        # server 0 holds nothing afterwards
        assert not state.placement()[0].any()

    def test_crash_before_start_time_clamps(self, instance, schedule, bandwidths):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule,
            instance,
            bandwidths,
            state,
            crashes=[(-5.0, 1)],
            start_time=10.0,
        )
        assert result.stop_time == 10.0
        assert result.crash_fired == (10.0, 1)

    def test_midrun_crash_aborts_in_flight(self, instance, schedule, bandwidths):
        baseline = simulate_parallel(schedule, instance, bandwidths)
        crash_time = baseline.makespan / 2
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule, instance, bandwidths, state, crashes=[(crash_time, 2)]
        )
        assert result.stop_time == crash_time
        aborted = [e for e in result.trace if e.status == STATUS_ABORTED]
        for event in aborted:
            assert event.finish == crash_time
        ok = [e for e in result.trace if e.status == STATUS_OK]
        assert all(e.finish <= crash_time for e in ok)


class TestSlowdowns:
    def test_slowdown_stretches_affected_transfers(self, instance, bandwidths):
        # single transfer 0 <- dummy? Use a real pair from the schedule.
        schedule = build_pipeline("GSDF").run(instance, rng=1)
        first = next(a for a in schedule if isinstance(a, Transfer))
        slow = [(0.0, first.target, first.source, 4.0)]
        fast_state = SystemState(instance)
        fast = simulate_with_faults(
            schedule, instance, bandwidths, fast_state
        )
        slow_state = SystemState(instance)
        slowed = simulate_with_faults(
            schedule, instance, bandwidths, slow_state, slowdowns=slow
        )
        assert slowed.completed
        fast_d = {
            e.position: e.finish - e.start
            for e in fast.trace
            if isinstance(e.action, Transfer)
        }
        slow_d = {
            e.position: e.finish - e.start
            for e in slowed.trace
            if isinstance(e.action, Transfer)
        }
        stretched = [
            pos
            for pos, action in enumerate(schedule.actions())
            if isinstance(action, Transfer)
            and (action.target, action.source) == (first.target, first.source)
        ]
        for pos in stretched:
            assert slow_d[pos] == pytest.approx(4.0 * fast_d[pos])
        untouched = [p for p in fast_d if p not in stretched]
        for pos in untouched:
            assert slow_d[pos] == pytest.approx(fast_d[pos])

    def test_slowdown_never_halts(self, instance, schedule, bandwidths):
        state = SystemState(instance)
        result = simulate_with_faults(
            schedule,
            instance,
            bandwidths,
            state,
            slowdowns=[(0.0, 0, 1, 8.0), (0.0, 1, 0, 8.0)],
        )
        assert result.completed
        assert state.matches(instance.x_new)
