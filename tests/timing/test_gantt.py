"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.core import build_pipeline
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.timing.bandwidth import uniform_bandwidths
from repro.timing.executor import simulate_parallel
from repro.timing.gantt import render_gantt
from repro.workloads.regular import paper_instance


def test_exported_from_package():
    # render_gantt is part of the public repro.timing surface
    import repro.timing

    assert repro.timing.render_gantt is render_gantt
    assert "render_gantt" in repro.timing.__all__


class TestRenderGantt:
    def test_empty_execution(self, tiny_instance):
        bw = uniform_bandwidths(3)
        result = simulate_parallel(Schedule(), tiny_instance, bw)
        assert "empty" in render_gantt(result, 3)

    def test_rows_per_server(self, tiny_instance):
        bw = uniform_bandwidths(3, rate=0.5)
        schedule = Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        result = simulate_parallel(schedule, tiny_instance, bw)
        text = render_gantt(result, 3)
        for server in range(3):
            assert f"S{server}" in text

    def test_transfer_block_on_target_row(self, tiny_instance):
        bw = uniform_bandwidths(3, rate=0.5)
        schedule = Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        result = simulate_parallel(schedule, tiny_instance, bw)
        lines = render_gantt(result, 3, width=20).splitlines()
        s2_row = next(l for l in lines if l.startswith("S2"))
        assert "#" in s2_row or "0" in s2_row
        s1_row = next(l for l in lines if l.startswith("S1"))
        assert "#" not in s1_row

    def test_header_metrics(self, tiny_instance):
        bw = uniform_bandwidths(3, rate=0.5)
        schedule = Schedule([Transfer(2, 0, 0), Delete(0, 0)])
        result = simulate_parallel(schedule, tiny_instance, bw)
        text = render_gantt(result, 3)
        assert "makespan=2" in text
        assert "speedup" in text

    def test_realistic_schedule_renders(self):
        instance = paper_instance(replicas=2, num_servers=8, num_objects=20, rng=4)
        schedule = build_pipeline("GOLCF").run(instance, rng=0)
        bw = uniform_bandwidths(instance.num_servers, rate=1000.0)
        result = simulate_parallel(schedule, instance, bw)
        text = render_gantt(result, instance.num_servers, width=40)
        assert len(text.splitlines()) == instance.num_servers + 3
