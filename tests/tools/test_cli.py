"""Tests for the repro.tools CLI."""

import json

import pytest

from repro.io import save_instance, save_schedule
from repro.model.actions import Delete, Transfer
from repro.model.schedule import Schedule
from repro.tools.cli import build_parser, main
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def instance():
    return paper_instance(replicas=2, num_servers=6, num_objects=12, rng=2)


@pytest.fixture
def instance_file(instance, tmp_path):
    path = tmp_path / "instance.json"
    save_instance(instance, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(
            ["schedule", "--instance", "i.json", "--out", "s.json"]
        )
        assert args.pipeline == "GOLCF+H1+H2+OP1"
        assert args.seed == 0


class TestScheduleCommand:
    def test_end_to_end(self, instance_file, tmp_path, capsys):
        out = tmp_path / "schedule.json"
        code = main(
            ["schedule", "--instance", instance_file, "--out", str(out)]
        )
        assert code == 0
        assert "cost=" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["format"] == "rtsp-schedule/1"

    def test_custom_pipeline(self, instance_file, tmp_path):
        out = tmp_path / "schedule.json"
        assert main(
            ["schedule", "--instance", instance_file, "--out", str(out),
             "--pipeline", "RDF", "--seed", "7"]
        ) == 0

    def test_sharded_path_matches_unsharded(self, tmp_path, capsys):
        from repro.shard import compose_instances

        composed = compose_instances(
            [
                paper_instance(2, num_servers=6, num_objects=12, rng=block)
                for block in range(2)
            ]
        )
        path = tmp_path / "composed.json"
        save_instance(composed, path)
        outputs = {}
        for shards in (1, 2, 4):
            out = tmp_path / f"sharded{shards}.json"
            code = main(
                ["schedule", "--instance", str(path), "--pipeline",
                 "GOLCF+H1", "--seed", "5", "--out", str(out),
                 "--shards", str(shards), "--workers", "2"]
            )
            assert code == 0
            outputs[shards] = out.read_text()
        printed = capsys.readouterr().out
        assert "sharded over 2 component(s)" in printed
        # The schedule file is byte-identical for every --shards value.
        assert outputs[1] == outputs[2] == outputs[4]
        # And it validates against the instance.
        assert main(
            ["validate", "--instance", str(path), "--schedule",
             str(tmp_path / "sharded1.json"), "--strict"]
        ) == 0

    def test_bad_pipeline_is_error(self, instance_file, tmp_path, capsys):
        out = tmp_path / "s.json"
        code = main(
            ["schedule", "--instance", instance_file, "--out", str(out),
             "--pipeline", "NOPE"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_instance_file(self, tmp_path):
        assert main(
            ["schedule", "--instance", str(tmp_path / "nope.json"),
             "--out", str(tmp_path / "s.json")]
        ) == 2


class TestValidateCommand:
    def test_valid_round_trip(self, instance, instance_file, tmp_path, capsys):
        sched_path = tmp_path / "schedule.json"
        main(["schedule", "--instance", instance_file, "--out", str(sched_path)])
        capsys.readouterr()
        code = main(
            ["validate", "--instance", instance_file, "--schedule", str(sched_path)]
        )
        assert code == 0
        assert "VALID" in capsys.readouterr().out

    def test_invalid_schedule(self, instance, instance_file, tmp_path, capsys):
        bad = Schedule([Delete(0, 0) for _ in range(1)])
        # deleting an arbitrary replica almost surely breaks the end state
        sched_path = tmp_path / "bad.json"
        save_schedule(bad, sched_path)
        code = main(
            ["validate", "--instance", instance_file, "--schedule", str(sched_path)]
        )
        assert code == 1
        assert "INVALID" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_report_fields(self, instance_file, capsys):
        assert main(["analyze", "--instance", instance_file]) == 0
        out = capsys.readouterr().out
        for field in (
            "outstanding replicas",
            "storage feasible",
            "cost lower bound",
            "worst-case bound",
        ):
            assert field in out


class TestMakespanCommand:
    def test_simulation(self, instance_file, tmp_path, capsys):
        sched_path = tmp_path / "schedule.json"
        main(["schedule", "--instance", instance_file, "--out", str(sched_path)])
        capsys.readouterr()
        code = main(
            ["makespan", "--instance", instance_file,
             "--schedule", str(sched_path), "--slots", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "speedup" in out

    def test_rejects_invalid_schedule(self, instance_file, tmp_path, capsys):
        sched_path = tmp_path / "bad.json"
        save_schedule(Schedule([Transfer(0, 0, 99)]), sched_path)
        code = main(
            ["makespan", "--instance", instance_file, "--schedule", str(sched_path)]
        )
        assert code in (1, 2)


class TestTraceSummaryCommand:
    def _trace_file(self, tmp_path):
        from repro.obs import Tracer

        tracer = Tracer(meta={"figure": "4"})
        with tracer.span("repetition", x=1):
            with tracer.span("cell", pipeline="GOLCF"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        return str(path)

    def test_renders_summary(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert main(["trace-summary", path]) == 0
        out = capsys.readouterr().out
        assert "rtsp-trace/1" in out
        assert "repetition" in out and "cell" in out

    def test_top_limits_rows(self, tmp_path, capsys):
        path = self._trace_file(tmp_path)
        assert main(["trace-summary", path, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "cell" in out or "repetition" in out

    def test_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "nope"}\n')
        assert main(["trace-summary", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "none.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
