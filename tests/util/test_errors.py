"""Tests for the exception hierarchy."""

import pytest

from repro.util.errors import (
    CapacityError,
    ConfigurationError,
    InfeasibleInstanceError,
    InvalidActionError,
    InvalidScheduleError,
    RtspError,
)


@pytest.mark.parametrize(
    "exc",
    [
        ConfigurationError,
        InvalidActionError,
        InvalidScheduleError,
        CapacityError,
        InfeasibleInstanceError,
    ],
)
def test_all_derive_from_rtsp_error(exc):
    assert issubclass(exc, RtspError)
    with pytest.raises(RtspError):
        raise exc("boom")


def test_invalid_action_carries_context():
    err = InvalidActionError("bad", action="T", position=7)
    assert err.action == "T"
    assert err.position == 7


def test_invalid_schedule_carries_position():
    err = InvalidScheduleError("bad", position=3)
    assert err.position == 3


def test_defaults_are_none():
    assert InvalidActionError("x").action is None
    assert InvalidActionError("x").position is None
    assert InvalidScheduleError("x").position is None
