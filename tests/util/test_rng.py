"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = ensure_rng(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not-an-rng")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        kids = spawn_rngs(7, 3)
        draws = [k.integers(0, 1 << 30, size=4).tolist() for k in kids]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic_family(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 4)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_component_sensitivity(self):
        base = derive_seed(1, "fig4", 1, 0)
        assert derive_seed(1, "fig4", 1, 1) != base
        assert derive_seed(1, "fig5", 1, 0) != base
        assert derive_seed(2, "fig4", 1, 0) != base

    def test_non_negative_and_in_range(self):
        for comp in ("x", 123, 4.5, ("a", "b")):
            s = derive_seed(999, comp)
            assert 0 <= s < 2**63

    def test_usable_as_numpy_seed(self):
        gen = np.random.default_rng(derive_seed(3, "anything"))
        assert isinstance(gen.integers(0, 10), np.integer)
