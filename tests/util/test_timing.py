"""Tests for the deprecated :mod:`repro.util.timing` shim.

The real timing API lives in :mod:`repro.obs.profile`
(:class:`StageProfiler`); these tests pin the shim's contract — the old
``Stopwatch`` surface keeps working but warns — while the behavioral
tests below run against ``StageProfiler`` directly.
"""

import time

import pytest

from repro.obs.profile import StageProfiler, timed
from repro.util.timing import Stopwatch


def deprecated_stopwatch() -> Stopwatch:
    with pytest.warns(DeprecationWarning, match="StageProfiler"):
        return Stopwatch()


class TestStopwatchShim:
    def test_construction_warns(self):
        deprecated_stopwatch()

    def test_is_a_stage_profiler(self):
        assert isinstance(deprecated_stopwatch(), StageProfiler)

    def test_lap_alias_still_records(self):
        sw = deprecated_stopwatch()
        with sw.lap("work"):
            time.sleep(0.01)
        assert sw.laps["work"] >= 0.005

    def test_plain_profiler_does_not_warn(self, recwarn):
        StageProfiler()
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestStageProfiler:
    def test_stage_records_time(self):
        profiler = StageProfiler()
        with profiler.stage("work"):
            time.sleep(0.01)
        assert profiler.laps["work"] >= 0.005

    def test_laps_accumulate(self):
        profiler = StageProfiler()
        profiler.add("a", 1.0)
        profiler.add("a", 2.0)
        assert profiler.laps["a"] == 3.0

    def test_total(self):
        profiler = StageProfiler()
        profiler.add("a", 1.0)
        profiler.add("b", 2.0)
        assert profiler.total == 3.0

    def test_report_contains_names(self):
        profiler = StageProfiler()
        profiler.add("build", 0.5)
        profiler.add("optimize", 1.5)
        report = profiler.report()
        assert "build" in report and "optimize" in report
        # longest stage first
        assert report.index("optimize") < report.index("build")

    def test_empty_report(self):
        assert "no laps" in StageProfiler().report()


class TestTimedDecorator:
    def test_records_each_call(self):
        profiler = StageProfiler()

        @timed(profiler)
        def f(x):
            return x * 2

        assert f(2) == 4
        assert f(3) == 6
        assert "f" in profiler.laps

    def test_custom_name(self):
        profiler = StageProfiler()

        @timed(profiler, "custom")
        def g():
            return 1

        g()
        assert "custom" in profiler.laps

    def test_records_on_exception(self):
        profiler = StageProfiler()

        @timed(profiler)
        def boom():
            raise ValueError

        try:
            boom()
        except ValueError:
            pass
        assert "boom" in profiler.laps
