"""Tests for repro.util.timing."""

import time

from repro.util.timing import Stopwatch, timed


class TestStopwatch:
    def test_lap_records_time(self):
        sw = Stopwatch()
        with sw.lap("work"):
            time.sleep(0.01)
        assert sw.laps["work"] >= 0.005

    def test_laps_accumulate(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("a", 2.0)
        assert sw.laps["a"] == 3.0

    def test_total(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 2.0)
        assert sw.total == 3.0

    def test_report_contains_names(self):
        sw = Stopwatch()
        sw.add("build", 0.5)
        sw.add("optimize", 1.5)
        report = sw.report()
        assert "build" in report and "optimize" in report
        # longest lap first
        assert report.index("optimize") < report.index("build")

    def test_empty_report(self):
        assert "no laps" in Stopwatch().report()


class TestTimedDecorator:
    def test_records_each_call(self):
        sw = Stopwatch()

        @timed(sw)
        def f(x):
            return x * 2

        assert f(2) == 4
        assert f(3) == 6
        assert "f" in sw.laps

    def test_custom_name(self):
        sw = Stopwatch()

        @timed(sw, "custom")
        def g():
            return 1

        g()
        assert "custom" in sw.laps

    def test_records_on_exception(self):
        sw = Stopwatch()

        @timed(sw)
        def boom():
            raise ValueError

        try:
            boom()
        except ValueError:
            pass
        assert "boom" in sw.laps
