"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.util.validation import (
    check_binary_matrix,
    check_nonnegative,
    check_positive,
    check_probability,
    check_symmetric,
)


class TestBinaryMatrix:
    def test_accepts_zeros_and_ones(self):
        out = check_binary_matrix(np.array([[0, 1], [1, 0]]))
        assert out.dtype == np.int8

    def test_accepts_bool(self):
        out = check_binary_matrix(np.array([[True, False]]))
        assert out.tolist() == [[1, 0]]

    def test_rejects_other_values(self):
        with pytest.raises(ConfigurationError):
            check_binary_matrix(np.array([[0, 2]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ConfigurationError):
            check_binary_matrix(np.array([0, 1]))

    def test_empty_matrix_ok(self):
        assert check_binary_matrix(np.zeros((0, 3))).shape == (0, 3)

    def test_error_mentions_name(self):
        with pytest.raises(ConfigurationError, match="X_old"):
            check_binary_matrix(np.array([[3]]), "X_old")


class TestNonnegativeAndPositive:
    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative([0.0, 1.0]).tolist() == [0.0, 1.0]

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_nonnegative([-0.1])

    def test_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive([0.0])

    def test_positive_accepts_positive(self):
        assert check_positive([2.5]).tolist() == [2.5]

    def test_returns_float64(self):
        assert check_positive([1, 2]).dtype == np.float64


class TestProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01, 5])
    def test_rejects_outside(self, p):
        with pytest.raises(ConfigurationError):
            check_probability(p)


class TestSymmetric:
    def test_accepts_symmetric(self):
        m = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert check_symmetric(m).shape == (2, 2)

    def test_rejects_asymmetric(self):
        with pytest.raises(ConfigurationError):
            check_symmetric(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            check_symmetric(np.zeros((2, 3)))

    def test_tolerance(self):
        m = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        check_symmetric(m)  # within atol
