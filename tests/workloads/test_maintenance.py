"""Tests for the server-draining maintenance workload."""

import numpy as np
import pytest

from repro.core import build_pipeline
from repro.model.actions import Transfer, is_delete, is_transfer
from repro.util.errors import ConfigurationError
from repro.workloads.maintenance import drain_instance, drain_placement
from repro.workloads.regular import paper_instance


@pytest.fixture(scope="module")
def base_instance():
    return paper_instance(
        replicas=2, num_servers=10, num_objects=30,
        extra_capacity_servers=10, rng=31,
    )


class TestDrainPlacement:
    def test_drained_servers_emptied(self, base_instance):
        inst = base_instance
        x_new = drain_placement(
            inst.x_new, inst.sizes, inst.capacities, drained=[0, 3], rng=0
        )
        assert x_new[0].sum() == 0
        assert x_new[3].sum() == 0

    def test_replicas_preserved_when_possible(self, base_instance):
        inst = base_instance
        x_new = drain_placement(
            inst.x_new, inst.sizes, inst.capacities, drained=[0], rng=0
        )
        # no object loses its last replica
        assert (x_new.sum(axis=0) >= 1).all()

    def test_capacities_respected(self, base_instance):
        inst = base_instance
        x_new = drain_placement(
            inst.x_new, inst.sizes, inst.capacities, drained=[0, 1], rng=0
        )
        used = x_new.astype(float) @ inst.sizes
        assert (used <= inst.capacities + 1e-9).all()

    def test_no_drain_is_identity(self, base_instance):
        inst = base_instance
        x_new = drain_placement(
            inst.x_new, inst.sizes, inst.capacities, drained=[], rng=0
        )
        assert (x_new == inst.x_new).all()

    def test_duplicate_replica_dropped_not_crashed(self):
        # both survivors already hold the object: the drained copy drops
        x_old = np.array([[1], [1], [1]], dtype=np.int8)
        x_new = drain_placement(
            x_old, np.ones(1), np.ones(3), drained=[2], rng=0
        )
        assert x_new[2].sum() == 0
        assert x_new[:, 0].sum() == 2

    def test_cannot_drain_all(self):
        x_old = np.eye(2, dtype=np.int8)
        with pytest.raises(ConfigurationError):
            drain_placement(x_old, np.ones(2), np.ones(2), drained=[0, 1])

    def test_out_of_range(self):
        x_old = np.eye(2, dtype=np.int8)
        with pytest.raises(ConfigurationError):
            drain_placement(x_old, np.ones(2), np.ones(2), drained=[5])

    def test_overfull_survivors_rejected(self):
        # single survivor cannot absorb the drained load
        x_old = np.array([[1, 1], [0, 0]], dtype=np.int8)
        with pytest.raises(ConfigurationError):
            drain_placement(
                x_old, np.ones(2), np.array([2.0, 1.0]), drained=[0]
            )


class TestDrainInstance:
    def test_valid_schedulable_instance(self, base_instance):
        inst = drain_instance(base_instance, drained=[2], rng=0)
        inst.check_feasible()
        schedule = build_pipeline("GOLCF+H1+H2+OP1").run(inst, rng=0)
        assert schedule.validate(inst).ok

    def test_no_transfers_into_drained_server(self, base_instance):
        inst = drain_instance(base_instance, drained=[2], rng=0)
        for spec in ("RDF", "GOLCF"):
            schedule = build_pipeline(spec).run(inst, rng=1)
            for t in schedule.transfers():
                assert t.target != 2

    def test_drained_server_only_deletes(self, base_instance):
        inst = drain_instance(base_instance, drained=[4], rng=0)
        schedule = build_pipeline("GSDF").run(inst, rng=0)
        touching = [
            a
            for a in schedule
            if (is_delete(a) and a.server == 4)
            or (is_transfer(a) and a.target == 4)
        ]
        assert touching, "the drained server must shed its replicas"
        assert all(is_delete(a) for a in touching)

    def test_drained_server_can_still_serve_as_source(self, base_instance):
        """Draining moves data off a server — the server is still up and
        is typically the cheapest source for its own replicas."""
        inst = drain_instance(base_instance, drained=[5], rng=0)
        schedule = build_pipeline("GOLCF").run(inst, rng=0)
        sourced = [t for t in schedule.transfers() if t.source == 5]
        assert sourced  # its replicas went somewhere, served by itself
