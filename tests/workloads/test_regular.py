"""Tests for the regular random placement generators."""

import numpy as np
import pytest

from repro.model.placement import overlap_fraction
from repro.util.errors import ConfigurationError
from repro.workloads.regular import (
    paper_instance,
    regular_placement_pair,
    regular_random_placement,
)


class TestRegularRandomPlacement:
    def test_column_sums_exact(self):
        x = regular_random_placement(10, 30, 3, rng=0)
        assert (x.sum(axis=0) == 3).all()

    def test_row_sums_balanced(self):
        x = regular_random_placement(10, 30, 3, rng=0)
        assert (x.sum(axis=1) == 9).all()  # 30*3/10

    def test_row_sums_near_balanced_when_indivisible(self):
        x = regular_random_placement(7, 10, 3, rng=1)
        rows = x.sum(axis=1)
        assert rows.sum() == 30
        assert rows.max() - rows.min() <= 1

    def test_forbidden_cells_respected(self):
        forbidden = regular_random_placement(8, 16, 2, rng=2)
        x = regular_random_placement(8, 16, 2, rng=3, forbidden=forbidden)
        assert ((x == 1) & (forbidden == 1)).sum() == 0

    def test_pinned_cells_kept(self):
        pinned = np.zeros((8, 16), dtype=np.int8)
        pinned[0, 0] = 1
        pinned[3, 5] = 1
        x = regular_random_placement(8, 16, 2, rng=4, pinned=pinned)
        assert x[0, 0] == 1 and x[3, 5] == 1
        assert (x.sum(axis=0) == 2).all()

    def test_replicas_bounds(self):
        with pytest.raises(ConfigurationError):
            regular_random_placement(5, 10, 0)
        with pytest.raises(ConfigurationError):
            regular_random_placement(5, 10, 6)

    def test_full_replication(self):
        x = regular_random_placement(5, 10, 5, rng=5)
        assert (x == 1).all()

    def test_deterministic(self):
        a = regular_random_placement(10, 20, 2, rng=9)
        b = regular_random_placement(10, 20, 2, rng=9)
        assert (a == b).all()

    def test_overconstrained_raises(self):
        # forbidding everything leaves no room
        forbidden = np.ones((4, 4), dtype=np.int8)
        with pytest.raises(ConfigurationError):
            regular_random_placement(4, 4, 1, rng=0, forbidden=forbidden)


class TestPlacementPair:
    def test_zero_overlap(self):
        x_old, x_new = regular_placement_pair(10, 40, 2, overlap=0.0, rng=0)
        assert overlap_fraction(x_old, x_new) == 0.0

    def test_both_regular(self):
        x_old, x_new = regular_placement_pair(10, 40, 2, rng=0)
        for x in (x_old, x_new):
            assert (x.sum(axis=0) == 2).all()
            assert (x.sum(axis=1) == 8).all()

    @pytest.mark.parametrize("overlap", [0.25, 0.5, 0.75])
    def test_partial_overlap(self, overlap):
        x_old, x_new = regular_placement_pair(
            10, 40, 2, overlap=overlap, rng=1
        )
        assert overlap_fraction(x_old, x_new) == pytest.approx(overlap, abs=0.05)

    def test_full_overlap_is_identity(self):
        x_old, x_new = regular_placement_pair(10, 40, 2, overlap=1.0, rng=2)
        assert (x_old == x_new).all()

    def test_bad_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            regular_placement_pair(10, 40, 2, overlap=1.5)


class TestPaperInstance:
    def test_structure(self):
        inst = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=0)
        assert inst.num_servers == 10
        assert inst.num_objects == 40
        assert (inst.sizes == 5000.0).all()
        assert (inst.x_old.sum(axis=0) == 2).all()
        assert (inst.x_new.sum(axis=0) == 2).all()

    def test_zero_slack_capacities(self):
        inst = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=0)
        assert (inst.capacities == inst.old_loads()).all()
        assert (inst.capacities == inst.new_loads()).all()

    def test_uniform_sizes(self):
        inst = paper_instance(
            replicas=2,
            num_servers=10,
            num_objects=40,
            uniform_size_range=(1000.0, 5000.0),
            rng=1,
        )
        assert inst.sizes.min() >= 1000 and inst.sizes.max() <= 5000
        assert len(set(inst.sizes.tolist())) > 1

    def test_extra_capacity_servers(self):
        base = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=3)
        slack = paper_instance(
            replicas=2,
            num_servers=10,
            num_objects=40,
            extra_capacity_servers=4,
            rng=3,
        )
        # same workload seed => same placements; 4 servers gained one
        # object's worth of capacity
        diff = slack.capacities - base.capacities
        assert (diff >= 0).all()
        assert int((diff > 0).sum()) == 4
        assert diff.max() == 5000.0

    def test_deterministic(self):
        a = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=5)
        b = paper_instance(replicas=2, num_servers=10, num_objects=40, rng=5)
        assert (a.x_old == b.x_old).all()
        assert (a.x_new == b.x_new).all()
        assert np.allclose(a.costs, b.costs)

    def test_dummy_constant_passthrough(self):
        a = paper_instance(
            replicas=2, num_servers=10, num_objects=40, rng=5, dummy_constant=2.0
        )
        b = paper_instance(
            replicas=2, num_servers=10, num_objects=40, rng=5, dummy_constant=1.0
        )
        assert a.dummy_cost == 2 * b.dummy_cost
