"""Tests for size distributions and capacity policies."""

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.workloads.capacity import (
    exact_fit_capacities,
    max_load_capacities,
    scaled_capacities,
    with_extra_object_slack,
)
from repro.workloads.sizes import constant_sizes, uniform_sizes, zipf_sizes


class TestSizes:
    def test_constant(self):
        s = constant_sizes(5, 100.0)
        assert (s == 100.0).all() and s.shape == (5,)

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            constant_sizes(5, 0.0)

    def test_uniform_range_and_integrality(self):
        s = uniform_sizes(500, 1000, 5000, rng=0)
        assert s.min() >= 1000 and s.max() <= 5000
        assert np.allclose(s, np.round(s))

    def test_uniform_deterministic(self):
        assert (uniform_sizes(10, rng=3) == uniform_sizes(10, rng=3)).all()

    def test_uniform_bad_range(self):
        with pytest.raises(ConfigurationError):
            uniform_sizes(5, 10, 1)

    def test_zipf_heavy_tail(self):
        s = zipf_sizes(100, base=1000, peak=8000, rng=0)
        assert s.min() >= 1000 - 1e-9
        assert s.max() <= 8000 + 1e-9
        # heavy skew: mean well below midpoint
        assert s.mean() < (1000 + 8000) / 2

    def test_zipf_bad_range(self):
        with pytest.raises(ConfigurationError):
            zipf_sizes(10, base=5000, peak=1000)


class TestCapacities:
    @pytest.fixture
    def schemes(self):
        x_old = np.array([[1, 1, 0], [0, 0, 1]], dtype=np.int8)
        x_new = np.array([[1, 0, 0], [0, 1, 1]], dtype=np.int8)
        sizes = np.array([2.0, 3.0, 4.0])
        return x_old, x_new, sizes

    def test_exact_fit(self, schemes):
        x_old, _, sizes = schemes
        assert exact_fit_capacities(x_old, sizes).tolist() == [5.0, 4.0]

    def test_max_load(self, schemes):
        x_old, x_new, sizes = schemes
        caps = max_load_capacities(x_old, x_new, sizes)
        assert caps.tolist() == [5.0, 7.0]

    def test_extra_slack_count_and_amount(self, schemes):
        x_old, x_new, sizes = schemes
        caps = max_load_capacities(x_old, x_new, sizes)
        out = with_extra_object_slack(caps, sizes, 1, rng=0)
        assert int((out > caps).sum()) == 1
        assert (out - caps).max() == 4.0  # largest object size

    def test_extra_slack_custom_amount(self, schemes):
        x_old, x_new, sizes = schemes
        caps = max_load_capacities(x_old, x_new, sizes)
        out = with_extra_object_slack(caps, sizes, 2, rng=0, slack=10.0)
        assert (out - caps).sum() == 20.0

    def test_extra_slack_zero_servers(self, schemes):
        x_old, x_new, sizes = schemes
        caps = max_load_capacities(x_old, x_new, sizes)
        out = with_extra_object_slack(caps, sizes, 0, rng=0)
        assert (out == caps).all()

    def test_extra_slack_bad_count(self, schemes):
        x_old, x_new, sizes = schemes
        caps = max_load_capacities(x_old, x_new, sizes)
        with pytest.raises(ConfigurationError):
            with_extra_object_slack(caps, sizes, 5, rng=0)

    def test_scaled(self, schemes):
        x_old, x_new, sizes = schemes
        caps = scaled_capacities(x_old, x_new, sizes, 1.5)
        assert caps.tolist() == [7.5, 10.5]

    def test_scaled_below_one_rejected(self, schemes):
        x_old, x_new, sizes = schemes
        with pytest.raises(ConfigurationError):
            scaled_capacities(x_old, x_new, sizes, 0.9)
