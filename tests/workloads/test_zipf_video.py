"""Tests for the Zipf popularity model and the video-server scenario."""

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.workloads.video import VideoCatalog, VideoRotationModel
from repro.workloads.zipf import drift_weights, sample_requests, zipf_weights


class TestZipfWeights:
    def test_normalised(self):
        w = zipf_weights(50, 0.8)
        assert w.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 0.8)
        assert (np.diff(w) <= 0).all()

    def test_exponent_zero_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_higher_exponent_more_skew(self):
        flat = zipf_weights(100, 0.2)
        steep = zipf_weights(100, 1.5)
        assert steep[0] > flat[0]

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0)
        with pytest.raises(ConfigurationError):
            zipf_weights(5, -1.0)


class TestSampleRequests:
    def test_shape_and_total(self):
        w = zipf_weights(20)
        counts = sample_requests(w, 1000, 5, rng=0)
        assert counts.shape == (5, 20)
        assert counts.sum() == 1000

    def test_popularity_reflected(self):
        w = zipf_weights(20, 1.2)
        counts = sample_requests(w, 20000, 4, rng=1)
        per_object = counts.sum(axis=0)
        assert per_object[0] > per_object[-1]

    def test_deterministic(self):
        w = zipf_weights(10)
        a = sample_requests(w, 500, 3, rng=5)
        b = sample_requests(w, 500, 3, rng=5)
        assert (a == b).all()


class TestDriftWeights:
    def test_mass_preserved(self):
        w = zipf_weights(30)
        out = drift_weights(w, 0.3, rng=0)
        assert out.sum() == pytest.approx(1.0)
        assert sorted(out.tolist()) == pytest.approx(sorted(w.tolist()))

    def test_zero_drift_identity(self):
        w = zipf_weights(30)
        assert (drift_weights(w, 0.0, rng=0) == w).all()

    def test_drift_changes_ranking(self):
        w = zipf_weights(30)
        out = drift_weights(w, 0.5, rng=1)
        assert not (out == w).all()

    def test_bad_drift(self):
        with pytest.raises(ConfigurationError):
            drift_weights(zipf_weights(5), 1.5)


class TestVideoCatalog:
    def test_release_tops_charts(self):
        catalog = VideoCatalog(
            sizes=np.ones(10), weights=zipf_weights(10, 1.0)
        )
        catalog.release(9, rng=0)
        assert catalog.weights[9] == catalog.weights.max()
        assert catalog.weights.sum() == pytest.approx(1.0)

    def test_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            VideoCatalog(sizes=np.ones(3), weights=np.ones(4) / 4)


class TestVideoRotationModel:
    @pytest.fixture(scope="class")
    def model(self):
        return VideoRotationModel(
            num_servers=8, num_movies=30, capacity_movies=6, rng=3
        )

    def test_daily_instances_are_valid_rtsp(self, model):
        inst = model.advance_day()
        inst.check_feasible()
        assert inst.num_servers == 8
        assert inst.num_objects == 30

    def test_placement_advances(self, model):
        before = model.placement
        inst = model.advance_day()
        assert (inst.x_old == before).all()
        assert (inst.x_new == model.placement).all()

    def test_days_iterator(self, model):
        instances = list(model.days(2))
        assert len(instances) == 2
        # consecutive: day 2's x_old is day 1's x_new
        assert (instances[1].x_old == instances[0].x_new).all()

    def test_every_movie_always_placed(self, model):
        inst = model.advance_day()
        assert (inst.x_new.sum(axis=0) >= 1).all()

    def test_capacity_check(self):
        with pytest.raises(ConfigurationError):
            VideoRotationModel(num_servers=2, num_movies=10, capacity_movies=1)
